"""List-scheduling warm starts."""

import pytest

from repro.cp import CpModel
from repro.cp.checker import check_solution
from repro.cp.heuristics import best_warm_start, group_sort_key, list_schedule


def _mapreduce_model(deadlines=(20, 30), lengths=((4, 4), (6,))):
    """Two jobs on a combined resource (2 map slots, 1 reduce slot)."""
    m = CpModel(horizon=200)
    all_maps, all_reds, bools = [], [], []
    for j, d in enumerate(deadlines):
        maps = [
            m.interval_var(length=lengths[0][k % len(lengths[0])], name=f"j{j}m{k}")
            for k in range(2)
        ]
        red = m.interval_var(length=lengths[1][0], name=f"j{j}r")
        m.add_barrier(maps, [red])
        b = m.add_deadline_indicator([red], deadline=d)
        m.add_group(f"j{j}", maps, [red], deadline=d)
        all_maps += maps
        all_reds.append(red)
        bools.append(b)
    m.add_cumulative(all_maps, capacity=2, name="maps")
    m.add_cumulative(all_reds, capacity=1, name="reds")
    m.minimize_sum(bools)
    m.engine()
    return m


def test_list_schedule_produces_valid_solution():
    m = _mapreduce_model()
    sol = list_schedule(m, "edf")
    assert sol is not None
    assert check_solution(m, sol) == []


def test_all_orderings_valid():
    m = _mapreduce_model()
    for order in ("edf", "laxity", "input"):
        sol = list_schedule(m, order)
        assert sol is not None
        assert check_solution(m, sol) == [], order


def test_unknown_ordering_rejected():
    m = _mapreduce_model()
    with pytest.raises(ValueError):
        list_schedule(m, "bogus")


def test_edf_prioritises_urgent_job():
    # job 0 has the *later* deadline; EDF should run job 1 first
    m = _mapreduce_model(deadlines=(100, 15))
    sol = list_schedule(m, "edf")
    g0, g1 = m.groups
    end_j1_maps = max(sol.end_of(iv) for iv in g1.first_stage)
    start_j0_red = sol.start_of(g0.second_stage[0])
    assert sol.objective == 0
    assert end_j1_maps <= start_j0_red + 100  # sanity; j1 not starved


def test_respects_frozen_tasks():
    m = CpModel(horizon=100)
    frozen = m.fixed_interval(start=0, length=10, name="frozen")
    a = m.interval_var(length=5, name="a")
    m.add_cumulative([frozen, a], capacity=1)
    m.add_group("j", [a])
    m.engine()
    sol = list_schedule(m, "edf")
    assert sol.starts[frozen] == 0
    assert sol.starts[a] >= 10


def test_respects_release_times():
    m = CpModel(horizon=100)
    a = m.interval_var(length=5, est=30, name="a")
    m.add_cumulative([a], capacity=1)
    m.add_group("j", [a], release=30)
    m.engine()
    sol = list_schedule(m, "edf")
    assert sol.starts[a] >= 30


def test_leftover_intervals_respect_precedences():
    m = CpModel(horizon=100)
    a = m.interval_var(length=5, name="a")
    b = m.interval_var(length=5, name="b")
    m.add_cumulative([a, b], capacity=2)
    m.add_end_before_start(a, b, delay=2)
    m.engine()
    sol = list_schedule(m, "edf")
    assert sol.starts[b] >= sol.starts[a] + 5 + 2


def test_joint_mode_resource_choice():
    m = CpModel(horizon=100)
    t1 = m.interval_var(length=10, name="t1")
    t2 = m.interval_var(length=10, name="t2")
    pools = {0: [], 1: []}
    for t in (t1, t2):
        opts = []
        for rid in (0, 1):
            o = m.interval_var(length=10, name=f"{t.name}@r{rid}", optional=True)
            pools[rid].append(o)
            opts.append(o)
        m.add_alternative(t, opts)
    m.add_cumulative(pools[0], capacity=1, name="r0")
    m.add_cumulative(pools[1], capacity=1, name="r1")
    m.add_group("j1", [t1])
    m.add_group("j2", [t2])
    m.engine()
    sol = list_schedule(m, "edf")
    assert sol is not None
    # the two tasks should go to different resources and run in parallel
    chosen = {sol.choices[t1].name.split("@")[1], sol.choices[t2].name.split("@")[1]}
    assert chosen == {"r0", "r1"}
    assert sol.starts[t1] == sol.starts[t2] == 0


def test_best_warm_start_picks_lowest_objective():
    m = _mapreduce_model(deadlines=(12, 12))
    sol = best_warm_start(m)
    assert sol is not None
    assert check_solution(m, sol) == []


def test_group_sort_key_orderings():
    m = CpModel(horizon=100)
    a = m.interval_var(length=5)
    g = m.add_group("j", [a], release=3, deadline=50)
    assert group_sort_key("edf", 0, g)[0] == 50
    assert group_sort_key("laxity", 0, g)[0] == 50 - 3 - 5
    assert group_sort_key("input", 4, g) == (4,)
    with pytest.raises(ValueError):
        group_sort_key("nope", 0, g)
