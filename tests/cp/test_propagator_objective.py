"""Branch-and-bound objective cut."""

import pytest

from repro.cp.engine import Engine
from repro.cp.errors import Infeasible
from repro.cp.propagators.objective import SumBoolBoundPropagator
from repro.cp.variables import BoolVar


def _setup(k):
    eng = Engine()
    bools = [BoolVar(f"b{i}") for i in range(k)]
    prop = SumBoolBoundPropagator(bools)
    eng.register(prop)
    eng.objective_propagator = prop
    eng.seal()
    return eng, bools, prop


def test_no_bound_no_propagation():
    eng, bools, _ = _setup(3)
    eng.propagate()
    assert all(not b.is_fixed for b in bools)


def test_exceeding_bound_fails():
    eng, bools, _ = _setup(3)
    eng.objective_bound = 1
    bools[0].set_true(eng)
    bools[1].set_true(eng)
    with pytest.raises(Infeasible):
        eng.propagate()


def test_reaching_bound_forces_rest_false():
    eng, bools, _ = _setup(3)
    eng.objective_bound = 1
    bools[0].set_true(eng)
    eng.propagate()
    assert bools[1].is_fixed and bools[1].value == 0
    assert bools[2].is_fixed and bools[2].value == 0


def test_bound_zero_forces_all_false():
    eng, bools, _ = _setup(3)
    eng.on_bound_tightened(0)
    eng.propagate()
    assert all(b.is_fixed and b.value == 0 for b in bools)


def test_lower_and_upper_bound_helpers():
    eng, bools, prop = _setup(3)
    assert prop.lower_bound() == 0
    assert prop.upper_bound() == 3
    bools[0].set_true(eng)
    bools[1].set_false(eng)
    assert prop.lower_bound() == 1
    assert prop.upper_bound() == 2
