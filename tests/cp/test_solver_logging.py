"""Solver trace logging."""

from repro.cp import CpSolver

from tests.conftest import two_job_single_machine_model


def test_log_disabled_by_default(capsys):
    m = two_job_single_machine_model()
    CpSolver().solve(m, time_limit=1.0)
    assert capsys.readouterr().out == ""


def test_log_traces_phases(capsys):
    m = two_job_single_machine_model()
    result = CpSolver().solve(m, time_limit=1.0, log=True)
    out = capsys.readouterr().out
    assert "[cp " in out
    assert "model" in out and "intervals" in out
    assert "warm" in out
    assert "tree" in out
    assert f"objective={result.objective}" in out


def test_log_fast_path_stops_at_warm_start(capsys):
    import repro.cp as cp

    m = cp.CpModel(horizon=100)
    a = m.interval_var(length=5, name="a")
    late = m.add_deadline_indicator([a], deadline=50)
    m.add_group("j", [a], deadline=50)
    m.add_cumulative([a], capacity=1)
    m.minimize_sum([late])
    CpSolver().solve(m, time_limit=1.0, log=True)
    out = capsys.readouterr().out
    assert "warm" in out
    assert "tree" not in out  # proven optimal before any search
