"""Tree search: feasibility, branch-and-bound, limits."""

from repro.cp import CpModel
from repro.cp.search import (
    SearchLimits,
    SetTimesBrancher,
    tree_search,
)

from tests.conftest import two_job_single_machine_model


def _search(model, jump=True, **limit_kw):
    engine = model.engine()
    engine.reset()
    brancher = SetTimesBrancher(model, jump=jump)
    limits = SearchLimits.from_budget(**limit_kw)
    return tree_search(model, engine, brancher, limits)


def test_finds_solution_simple():
    m = CpModel(horizon=50)
    a = m.interval_var(length=10, name="a")
    b = m.interval_var(length=10, name="b")
    m.add_cumulative([a, b], capacity=1)
    result = _search(m, time_budget=5.0)
    assert result.best is not None
    sa, sb = result.best.starts[a], result.best.starts[b]
    assert abs(sa - sb) >= 10  # no overlap


def test_optimises_to_zero_late():
    m = CpModel(horizon=50)
    a = m.interval_var(length=5, name="a")
    b = m.interval_var(length=5, name="b")
    m.add_cumulative([a, b], capacity=1)
    la = m.add_deadline_indicator([a], deadline=10)
    lb = m.add_deadline_indicator([b], deadline=10)
    m.minimize_sum([la, lb])
    result = _search(m, time_budget=5.0)
    assert result.best.objective == 0


def test_branch_and_bound_improves():
    m = two_job_single_machine_model()
    result = _search(m, time_budget=5.0, fail_limit=50_000)
    # one job must be late; B&B should find exactly one
    assert result.best.objective == 1


def test_complete_mode_proves_optimum():
    m = two_job_single_machine_model(horizon=40)
    result = _search(m, jump=False, time_budget=10.0)
    assert result.best.objective == 1
    assert result.exhausted


def test_fail_limit_respected():
    m = two_job_single_machine_model(horizon=60)
    result = _search(m, fail_limit=3)
    assert result.stats.fails <= 4  # one in-flight failure allowed


def test_respects_barrier_in_solutions():
    m = CpModel(horizon=100)
    maps = [m.interval_var(length=4, name=f"m{i}") for i in range(3)]
    red = m.interval_var(length=6, name="r")
    m.add_cumulative(maps, capacity=2)
    m.add_cumulative([red], capacity=1)
    m.add_barrier(maps, [red])
    result = _search(m, time_budget=5.0)
    sol = result.best
    assert sol is not None
    assert sol.starts[red] >= max(sol.starts[iv] + 4 for iv in maps)


def test_joint_mode_presence_decisions():
    m = CpModel(horizon=30)
    t = m.interval_var(length=5, name="t")
    o1 = m.interval_var(length=5, name="t@1", optional=True)
    o2 = m.interval_var(length=5, name="t@2", optional=True)
    m.add_alternative(t, [o1, o2])
    m.add_cumulative([o1], capacity=1)
    m.add_cumulative([o2], capacity=1)
    result = _search(m, time_budget=5.0)
    sol = result.best
    assert sol is not None
    assert sol.chosen_option(t) in (o1, o2)


def test_frozen_tasks_respected():
    m = CpModel(horizon=100)
    frozen = m.fixed_interval(start=0, length=10, name="frozen")
    a = m.interval_var(length=5, name="a")
    m.add_cumulative([frozen, a], capacity=1)
    result = _search(m, time_budget=5.0)
    assert result.best.starts[frozen] == 0
    assert result.best.starts[a] >= 10


def test_engine_left_reusable_after_search():
    m = two_job_single_machine_model()
    engine = m.engine()
    engine.reset()
    brancher = SetTimesBrancher(m, jump=True)
    r1 = tree_search(m, engine, brancher, SearchLimits.from_budget(time_budget=2.0))
    engine.reset()
    r2 = tree_search(m, engine, brancher, SearchLimits.from_budget(time_budget=2.0))
    assert r1.best.objective == r2.best.objective == 1


def test_root_infeasible_leaves_engine_at_sane_root_state():
    """Root propagation failure must restore the same state as a normal exit.

    Regression: the early return used to leave the trail at the failed
    level with half-propagated infeasible domains, so a subsequent solve
    sharing the engine started from poisoned bounds.
    """
    m = CpModel(horizon=30)
    a = m.fixed_interval(start=0, length=10, name="a")
    b = m.fixed_interval(start=5, length=10, name="b")
    m.add_cumulative([a, b], capacity=1)
    engine = m.engine()
    engine.reset()
    brancher = SetTimesBrancher(m, jump=True)
    r1 = tree_search(
        m, engine, brancher, SearchLimits.from_budget(time_budget=2.0)
    )
    assert r1.best is None and r1.exhausted and r1.stats.fails == 1
    # Same root state as the normal exit path: one open root level, empty
    # queues, and a re-run reproduces the identical result.
    assert engine.trail.level == 1
    assert not engine._queue_high and not engine._queue_low
    engine.reset()
    r2 = tree_search(
        m, engine, brancher, SearchLimits.from_budget(time_budget=2.0)
    )
    assert r2.best is None and r2.exhausted and r2.stats.fails == 1


def test_jump_matches_complete_with_absent_alternative_options():
    """Jump dominance must hold on instances where options go absent.

    An absent option's ect is meaningless (its window was squeezed before
    the presence flipped); if the postpone jump ever consumed it, the jump
    tree would skip feasible starts and report a worse objective than the
    exhaustive complete-mode tree.
    """

    def build():
        m = CpModel(horizon=60)
        blocker = m.fixed_interval(start=0, length=40, name="blocker")
        t1 = m.interval_var(length=3, name="t1")
        a1 = m.interval_var(length=3, name="t1@A", optional=True)
        b1 = m.interval_var(length=3, lst=20, name="t1@B", optional=True)
        m.add_alternative(t1, [a1, b1])
        t2 = m.interval_var(length=4, name="t2")
        m.add_cumulative([a1, t2], capacity=1)  # machine A
        m.add_cumulative([blocker, b1], capacity=1)  # machine B (blocked)
        late1 = m.add_deadline_indicator([t1], deadline=6)
        late2 = m.add_deadline_indicator([t2], deadline=6)
        m.minimize_sum([late1, late2])
        return m, t1, a1, b1

    results = {}
    for jump in (True, False):
        m, t1, a1, b1 = build()
        engine = m.engine()
        engine.reset()
        engine.propagate()
        assert b1.is_absent  # the blocked option is ruled out at the root
        engine.reset()
        brancher = SetTimesBrancher(m, jump=jump)
        result = tree_search(
            m, engine, brancher, SearchLimits.from_budget(time_budget=10.0)
        )
        assert result.best is not None
        assert result.best.chosen_option(t1) is a1
        results[jump] = result.best.objective
    assert results[True] == results[False] == 1
