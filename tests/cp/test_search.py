"""Tree search: feasibility, branch-and-bound, limits."""

from repro.cp import CpModel
from repro.cp.search import (
    SearchLimits,
    SetTimesBrancher,
    tree_search,
)

from tests.conftest import two_job_single_machine_model


def _search(model, jump=True, **limit_kw):
    engine = model.engine()
    engine.reset()
    brancher = SetTimesBrancher(model, jump=jump)
    limits = SearchLimits.from_budget(**limit_kw)
    return tree_search(model, engine, brancher, limits)


def test_finds_solution_simple():
    m = CpModel(horizon=50)
    a = m.interval_var(length=10, name="a")
    b = m.interval_var(length=10, name="b")
    m.add_cumulative([a, b], capacity=1)
    result = _search(m, time_budget=5.0)
    assert result.best is not None
    sa, sb = result.best.starts[a], result.best.starts[b]
    assert abs(sa - sb) >= 10  # no overlap


def test_optimises_to_zero_late():
    m = CpModel(horizon=50)
    a = m.interval_var(length=5, name="a")
    b = m.interval_var(length=5, name="b")
    m.add_cumulative([a, b], capacity=1)
    la = m.add_deadline_indicator([a], deadline=10)
    lb = m.add_deadline_indicator([b], deadline=10)
    m.minimize_sum([la, lb])
    result = _search(m, time_budget=5.0)
    assert result.best.objective == 0


def test_branch_and_bound_improves():
    m = two_job_single_machine_model()
    result = _search(m, time_budget=5.0, fail_limit=50_000)
    # one job must be late; B&B should find exactly one
    assert result.best.objective == 1


def test_complete_mode_proves_optimum():
    m = two_job_single_machine_model(horizon=40)
    result = _search(m, jump=False, time_budget=10.0)
    assert result.best.objective == 1
    assert result.exhausted


def test_fail_limit_respected():
    m = two_job_single_machine_model(horizon=60)
    result = _search(m, fail_limit=3)
    assert result.stats.fails <= 4  # one in-flight failure allowed


def test_respects_barrier_in_solutions():
    m = CpModel(horizon=100)
    maps = [m.interval_var(length=4, name=f"m{i}") for i in range(3)]
    red = m.interval_var(length=6, name="r")
    m.add_cumulative(maps, capacity=2)
    m.add_cumulative([red], capacity=1)
    m.add_barrier(maps, [red])
    result = _search(m, time_budget=5.0)
    sol = result.best
    assert sol is not None
    assert sol.starts[red] >= max(sol.starts[iv] + 4 for iv in maps)


def test_joint_mode_presence_decisions():
    m = CpModel(horizon=30)
    t = m.interval_var(length=5, name="t")
    o1 = m.interval_var(length=5, name="t@1", optional=True)
    o2 = m.interval_var(length=5, name="t@2", optional=True)
    m.add_alternative(t, [o1, o2])
    m.add_cumulative([o1], capacity=1)
    m.add_cumulative([o2], capacity=1)
    result = _search(m, time_budget=5.0)
    sol = result.best
    assert sol is not None
    assert sol.chosen_option(t) in (o1, o2)


def test_frozen_tasks_respected():
    m = CpModel(horizon=100)
    frozen = m.fixed_interval(start=0, length=10, name="frozen")
    a = m.interval_var(length=5, name="a")
    m.add_cumulative([frozen, a], capacity=1)
    result = _search(m, time_budget=5.0)
    assert result.best.starts[frozen] == 0
    assert result.best.starts[a] >= 10


def test_engine_left_reusable_after_search():
    m = two_job_single_machine_model()
    engine = m.engine()
    engine.reset()
    brancher = SetTimesBrancher(m, jump=True)
    r1 = tree_search(m, engine, brancher, SearchLimits.from_budget(time_budget=2.0))
    engine.reset()
    r2 = tree_search(m, engine, brancher, SearchLimits.from_budget(time_budget=2.0))
    assert r1.best.objective == r2.best.objective == 1
