"""IntDomain bounds semantics."""

import pytest

from repro.cp.domain import IntDomain
from repro.cp.errors import Infeasible
from repro.cp.trail import Trail


class _Engine:
    def __init__(self):
        self.trail = Trail()
        self.woken = []
        self.events = []

    def wake(self, entries, event, cause=None):
        self.woken.extend(prop for prop, _token in entries)
        self.events.append(event)


def test_initial_bounds():
    d = IntDomain(3, 9)
    assert d.min == 3 and d.max == 9
    assert d.size == 7
    assert not d.is_fixed


def test_empty_initial_domain_raises():
    with pytest.raises(Infeasible):
        IntDomain(5, 4)


def test_set_min_no_op_below_current():
    eng = _Engine()
    d = IntDomain(5, 10)
    assert d.set_min(5, eng) is False
    assert d.set_min(2, eng) is False
    assert d.min == 5


def test_set_min_moves_bound_and_wakes():
    eng = _Engine()
    d = IntDomain(0, 10)
    sentinel = object()
    d.watch(sentinel)
    assert d.set_min(4, eng) is True
    assert d.min == 4
    assert sentinel in eng.woken


def test_set_min_wipeout():
    eng = _Engine()
    d = IntDomain(0, 10)
    with pytest.raises(Infeasible):
        d.set_min(11, eng)


def test_set_max_wipeout():
    eng = _Engine()
    d = IntDomain(5, 10)
    with pytest.raises(Infeasible):
        d.set_max(4, eng)


def test_fix():
    eng = _Engine()
    d = IntDomain(0, 10)
    d.fix(7, eng)
    assert d.is_fixed and d.value == 7


def test_fix_outside_raises():
    eng = _Engine()
    d = IntDomain(0, 10)
    with pytest.raises(Infeasible):
        d.fix(11, eng)


def test_value_of_unfixed_raises():
    d = IntDomain(0, 10)
    with pytest.raises(ValueError):
        _ = d.value


def test_contains():
    d = IntDomain(2, 4)
    assert d.contains(2) and d.contains(4)
    assert not d.contains(1) and not d.contains(5)


def test_repr_forms():
    d = IntDomain(1, 3, name="x")
    assert "x" in repr(d)
    eng = _Engine()
    d.fix(2, eng)
    assert "x=2" == repr(d)
