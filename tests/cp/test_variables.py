"""IntervalVar and BoolVar semantics."""

import pytest

from repro.cp.errors import Infeasible, ModelError
from repro.cp.trail import Trail
from repro.cp.variables import BoolVar, IntervalVar


class _Engine:
    def __init__(self):
        self.trail = Trail()

    def wake(self, watchers):
        pass


def test_interval_time_accessors():
    iv = IntervalVar(2, 8, 5, name="t")
    assert iv.est == 2 and iv.lst == 8
    assert iv.ect == 7 and iv.lct == 13
    assert not iv.start_fixed


def test_negative_length_rejected():
    with pytest.raises(ModelError):
        IntervalVar(0, 5, -1)


def test_empty_window_rejected():
    with pytest.raises(ModelError):
        IntervalVar(6, 5, 1)


def test_compulsory_part():
    # lst < ect  <=>  8 < est+5 -> est > 3
    iv = IntervalVar(4, 6, 5)
    assert iv.has_compulsory_part  # [6, 9)
    iv2 = IntervalVar(0, 6, 5)
    assert not iv2.has_compulsory_part


def test_mandatory_interval_presence():
    iv = IntervalVar(0, 5, 3)
    assert not iv.is_optional
    assert iv.is_present
    assert not iv.is_absent
    assert not iv.presence_undecided


def test_optional_interval_presence_lifecycle():
    eng = _Engine()
    iv = IntervalVar(0, 5, 3, optional=True)
    assert iv.is_optional and iv.presence_undecided
    assert not iv.is_present and not iv.is_absent
    iv.set_present(eng)
    assert iv.is_present and not iv.presence_undecided


def test_optional_interval_absent():
    eng = _Engine()
    iv = IntervalVar(0, 5, 3, optional=True)
    iv.set_absent(eng)
    assert iv.is_absent


def test_mandatory_cannot_be_absent():
    eng = _Engine()
    iv = IntervalVar(0, 5, 3)
    with pytest.raises(Infeasible):
        iv.set_absent(eng)


def test_end_bound_setters():
    eng = _Engine()
    iv = IntervalVar(0, 10, 4)
    iv.set_end_max(8, eng)
    assert iv.lst == 4
    iv.set_end_min(6, eng)
    assert iv.est == 2


def test_fix_start():
    eng = _Engine()
    iv = IntervalVar(0, 10, 4)
    iv.fix_start(3, eng)
    assert iv.start_fixed and iv.est == 3 and iv.ect == 7


def test_boolvar():
    eng = _Engine()
    b = BoolVar("b")
    assert b.can_be_true and b.can_be_false and not b.is_fixed
    b.set_true(eng)
    assert b.is_fixed and b.value == 1
    with pytest.raises(Infeasible):
        b.set_false(eng)


def test_payload_passthrough():
    marker = object()
    iv = IntervalVar(0, 5, 1, payload=marker)
    assert iv.payload is marker
