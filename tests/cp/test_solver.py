"""CpSolver facade: statuses, budgets, fast paths."""

import pytest

from repro.cp import CpModel, CpSolver, SolveStatus
from repro.cp.checker import check_solution
from repro.cp.solver import SolverParams

from tests.conftest import two_job_single_machine_model


def test_trivial_feasibility():
    m = CpModel(horizon=50)
    m.interval_var(length=5, name="a")
    result = CpSolver().solve(m, time_limit=2.0)
    assert result.status is SolveStatus.FEASIBLE
    assert result.solution is not None


def test_zero_late_is_optimal_fast_path():
    m = CpModel(horizon=100)
    a = m.interval_var(length=5, name="a")
    late = m.add_deadline_indicator([a], deadline=50)
    m.add_group("j", [a], deadline=50)
    m.add_cumulative([a], capacity=1)
    m.minimize_sum([late])
    result = CpSolver().solve(m, time_limit=2.0)
    assert result.status is SolveStatus.OPTIMAL
    assert result.objective == 0
    # warm start alone: no tree search was needed
    assert result.stats.branches == 0


def test_provably_late_root_bound_fast_path():
    # the job cannot possibly meet its deadline: root LB = 1 = warm start
    m = CpModel(horizon=100)
    a = m.interval_var(length=30, name="a")
    late = m.add_deadline_indicator([a], deadline=10)
    m.add_group("j", [a], deadline=10)
    m.add_cumulative([a], capacity=1)
    m.minimize_sum([late])
    result = CpSolver().solve(m, time_limit=2.0)
    assert result.status is SolveStatus.OPTIMAL
    assert result.objective == 1
    assert result.stats.branches == 0


@pytest.mark.slow
def test_one_late_instance():
    m = two_job_single_machine_model()
    result = CpSolver().solve(m, time_limit=5.0)
    assert result.status.has_solution
    assert result.objective == 1
    assert check_solution(m, result.solution) == []


def test_infeasible_model():
    m = CpModel(horizon=50)
    a = m.fixed_interval(start=0, length=10, name="a")
    b = m.fixed_interval(start=5, length=10, name="b")
    m.add_cumulative([a, b], capacity=1)
    result = CpSolver().solve(m, time_limit=2.0)
    assert result.status is SolveStatus.INFEASIBLE
    assert result.solution is None
    assert not result


@pytest.mark.slow
def test_solution_always_validates():
    m = two_job_single_machine_model()
    result = CpSolver(SolverParams(time_limit=2.0)).solve(m)
    assert check_solution(m, result.solution) == []


def test_param_overrides():
    m = two_job_single_machine_model()
    solver = CpSolver(SolverParams(time_limit=99.0))
    result = solver.solve(m, time_limit=0.5)
    assert result.stats.wall_time < 5.0


def test_no_lns_configuration():
    m = two_job_single_machine_model()
    result = CpSolver().solve(m, time_limit=1.0, use_lns=False)
    assert result.stats.lns_iterations == 0
    assert result.objective == 1


def test_joint_matchmaking_solved():
    m = CpModel(horizon=20)
    tasks, bools = [], []
    pools = {0: [], 1: []}
    for i in range(2):
        t = m.interval_var(length=6, name=f"t{i}")
        opts = []
        for rid in (0, 1):
            o = m.interval_var(length=6, name=f"t{i}@r{rid}", optional=True)
            pools[rid].append(o)
            opts.append(o)
        m.add_alternative(t, opts)
        b = m.add_deadline_indicator([t], deadline=6)
        m.add_group(f"j{i}", [t], deadline=6)
        tasks.append(t)
        bools.append(b)
    m.add_cumulative(pools[0], capacity=1)
    m.add_cumulative(pools[1], capacity=1)
    m.minimize_sum(bools)
    result = CpSolver().solve(m, time_limit=5.0)
    # both meet their deadlines by using different resources
    assert result.objective == 0
    chosen = {result.solution.choices[t].name.split("@")[1] for t in tasks}
    assert chosen == {"r0", "r1"}


@pytest.mark.slow
def test_solver_reusable_across_solves():
    solver = CpSolver(SolverParams(time_limit=2.0))
    for _ in range(2):
        m = two_job_single_machine_model()
        result = solver.solve(m)
        assert result.objective == 1
