"""Trail: save/restore semantics under nested levels."""

import pytest

from repro.cp.domain import IntDomain
from repro.cp.trail import Trail


class _Engine:
    """Minimal engine stand-in: a trail and a no-op wake."""

    def __init__(self):
        self.trail = Trail()

    def wake(self, watchers):
        pass


def test_root_changes_are_permanent():
    eng = _Engine()
    d = IntDomain(0, 10, "d")
    d.set_min(3, eng)
    assert eng.trail.level == 0
    assert len(eng.trail) == 0  # nothing recorded at the root
    assert d.min == 3


def test_push_pop_restores_bounds():
    eng = _Engine()
    d = IntDomain(0, 10, "d")
    eng.trail.push_level()
    d.set_min(4, eng)
    d.set_max(7, eng)
    assert (d.min, d.max) == (4, 7)
    eng.trail.pop_level()
    assert (d.min, d.max) == (0, 10)


def test_one_entry_per_domain_per_level():
    eng = _Engine()
    d = IntDomain(0, 100, "d")
    eng.trail.push_level()
    for v in range(1, 50):
        d.set_min(v, eng)
    assert len(eng.trail) == 1  # stamped: repeated tightenings share an entry
    eng.trail.pop_level()
    assert d.min == 0


def test_nested_levels_restore_in_order():
    eng = _Engine()
    d = IntDomain(0, 10, "d")
    eng.trail.push_level()
    d.set_min(2, eng)
    eng.trail.push_level()
    d.set_min(5, eng)
    eng.trail.push_level()
    d.set_max(6, eng)
    assert (d.min, d.max) == (5, 6)
    eng.trail.pop_level()
    assert (d.min, d.max) == (5, 10)
    eng.trail.pop_level()
    assert (d.min, d.max) == (2, 10)
    eng.trail.pop_level()
    assert (d.min, d.max) == (0, 10)


def test_resave_after_pop_at_same_depth():
    """A domain modified, popped, then modified again must re-save."""
    eng = _Engine()
    d = IntDomain(0, 10, "d")
    eng.trail.push_level()
    d.set_min(5, eng)
    eng.trail.pop_level()
    eng.trail.push_level()
    d.set_min(7, eng)
    eng.trail.pop_level()
    assert d.min == 0


def test_pop_all():
    eng = _Engine()
    d = IntDomain(0, 10, "d")
    for v in (2, 4, 6):
        eng.trail.push_level()
        d.set_min(v, eng)
    eng.trail.pop_all()
    assert d.min == 0
    assert eng.trail.level == 0


def test_pop_at_root_raises():
    trail = Trail()
    with pytest.raises(RuntimeError):
        trail.pop_level()


def test_interleaved_domains():
    eng = _Engine()
    a = IntDomain(0, 10, "a")
    b = IntDomain(0, 10, "b")
    eng.trail.push_level()
    a.set_min(1, eng)
    b.set_max(9, eng)
    a.set_min(2, eng)
    eng.trail.push_level()
    b.set_max(5, eng)
    a.set_max(8, eng)
    eng.trail.pop_level()
    assert (a.min, a.max) == (2, 10)
    assert (b.min, b.max) == (0, 9)
    eng.trail.pop_level()
    assert (a.min, a.max) == (0, 10)
    assert (b.min, b.max) == (0, 10)
