"""Solver-phase profiling: SolveProfile contents and phase span emission."""

from repro.cp import CpModel, CpSolver
from repro.cp.solver import PHASE_SPANS, SolverParams
from repro.obs.trace import TraceRecorder, Tracer

from tests.conftest import two_job_single_machine_model


def test_profile_off_by_default():
    m = two_job_single_machine_model()
    result = CpSolver().solve(m, time_limit=1.0)
    assert result.profile is None


def test_profile_populated_when_requested():
    m = two_job_single_machine_model()
    solver = CpSolver(SolverParams(profile=True))
    result = solver.solve(m, time_limit=1.0)
    p = result.profile
    assert p is not None
    assert p.solved_by in ("hint", "warm_start", "tree", "lns")
    assert p.final_objective == result.objective
    assert p.engine_propagate_calls > 0
    assert p.engine_propagate_time >= 0.0
    assert p.propagators, "per-propagator counters should not be empty"
    for counts in p.propagators.values():
        assert set(counts) == {"runs", "prunes", "fails"}
        assert counts["runs"] >= 0


def test_profile_attributes_tree_improvement():
    # two jobs on one machine, only one can meet its deadline: the warm
    # start is suboptimal or the tree proves it -- either way the profile
    # must name the phase that produced the final incumbent
    m = two_job_single_machine_model()
    result = CpSolver(SolverParams(profile=True)).solve(m, time_limit=1.0)
    p = result.profile
    if p.improved_by_tree:
        assert p.solved_by == "tree"
    if p.warm_start_objective is not None and not (
        p.improved_by_tree or p.improved_by_lns
    ):
        assert p.warm_start_objective == p.final_objective


def test_phase_times_populated_in_stats():
    m = two_job_single_machine_model()
    result = CpSolver(SolverParams(profile=True)).solve(m, time_limit=1.0)
    stats = result.stats
    assert stats.propagate_time >= 0.0
    assert stats.warm_start_time >= 0.0
    assert stats.tree_time >= 0.0
    assert stats.lns_time >= 0.0


def test_tracer_enables_profiling_and_emits_every_phase_span():
    tracer = Tracer(TraceRecorder())
    m = two_job_single_machine_model()
    result = CpSolver(tracer=tracer).solve(m, time_limit=1.0)
    assert result.profile is not None  # tracing implies profiling
    names = {e["name"] for e in tracer.recorder.events}
    for phase in PHASE_SPANS:
        assert phase in names, f"missing phase span {phase}"


def test_skipped_phases_marked_not_omitted():
    # warm-start-optimal fast path: search and LNS never run, but the
    # trace still carries zero-duration markers flagged skipped=True
    tracer = Tracer(TraceRecorder())
    m = CpModel(horizon=100)
    a = m.interval_var(length=5, name="a")
    late = m.add_deadline_indicator([a], deadline=50)
    m.add_group("j", [a], deadline=50)
    m.add_cumulative([a], capacity=1)
    m.minimize_sum([late])
    result = CpSolver(tracer=tracer).solve(m, time_limit=2.0)
    assert result.stats.branches == 0
    by_name = {e["name"]: e for e in tracer.recorder.events}
    for phase in PHASE_SPANS:
        assert phase in by_name
    assert by_name["cp.search"]["args"].get("skipped") is True
    assert by_name["cp.search"]["dur"] == 0.0


def test_engine_profile_detached_when_not_profiling():
    # phase wall times are always cheap to record, but the per-propagator
    # engine instrumentation must stay off unless explicitly requested
    m = two_job_single_machine_model()
    result = CpSolver().solve(m, time_limit=1.0)
    assert result.profile is None
    assert result.stats.propagate_time >= 0.0
