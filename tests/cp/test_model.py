"""CpModel building and compilation."""

import pytest

from repro.cp import CpModel
from repro.cp.errors import ModelError


def test_interval_defaults_to_horizon_window():
    m = CpModel(horizon=100)
    iv = m.interval_var(length=10)
    assert iv.est == 0
    assert iv.lst == 90


def test_horizon_too_small_rejected():
    m = CpModel(horizon=5)
    with pytest.raises(ModelError):
        m.interval_var(length=10)


def test_invalid_horizon_rejected():
    with pytest.raises(ModelError):
        CpModel(horizon=0)


def test_fixed_interval():
    m = CpModel(horizon=100)
    iv = m.fixed_interval(start=7, length=3)
    assert iv.est == iv.lst == 7


def test_unique_names():
    m = CpModel(horizon=100)
    a = m.interval_var(length=1, name="t")
    b = m.interval_var(length=1, name="t")
    assert a.name != b.name


def test_demand_exceeding_capacity_rejected_for_mandatory():
    m = CpModel(horizon=100)
    iv = m.interval_var(length=5, demand=3)
    with pytest.raises(ModelError):
        m.add_cumulative([iv], capacity=2)


def test_demand_exceeding_capacity_allowed_for_optional():
    m = CpModel(horizon=100)
    iv = m.interval_var(length=5, demand=3, optional=True)
    m.add_cumulative([iv], capacity=2)  # the option can simply stay absent


def test_empty_barrier_sides_skipped():
    m = CpModel(horizon=100)
    iv = m.interval_var(length=5)
    assert m.add_barrier([], [iv]) is None
    assert m.add_barrier([iv], []) is None
    assert not m.barriers


def test_indicator_requires_tasks():
    m = CpModel(horizon=100)
    with pytest.raises(ModelError):
        m.add_deadline_indicator([], deadline=10)


def test_engine_compiles_once():
    m = CpModel(horizon=100)
    m.interval_var(length=5)
    e1 = m.engine()
    e2 = m.engine()
    assert e1 is e2


def test_no_new_constraints_after_compile():
    m = CpModel(horizon=100)
    iv = m.interval_var(length=5)
    m.engine()
    with pytest.raises(ModelError):
        m.interval_var(length=3)
    with pytest.raises(ModelError):
        m.add_cumulative([iv], capacity=1)


def test_original_windows_captured():
    m = CpModel(horizon=100)
    iv = m.interval_var(length=5, est=3)
    m.engine()
    assert m.original_windows[iv] == (3, 95)


def test_group_properties():
    m = CpModel(horizon=100)
    a = m.interval_var(length=5)
    b = m.interval_var(length=7)
    g = m.add_group("j", [a], [b], release=2, deadline=30)
    assert g.intervals == [a, b]
    assert g.total_length == 12
    assert g.laxity() == 30 - 2 - 12


def test_group_without_deadline_has_infinite_laxity():
    m = CpModel(horizon=100)
    a = m.interval_var(length=5)
    g = m.add_group("j", [a])
    assert g.laxity() == float("inf")


def test_stats_summary():
    m = CpModel(horizon=100)
    a = m.interval_var(length=5)
    b = m.interval_var(length=5, optional=True)
    m.add_cumulative([a], capacity=1)
    s = m.stats()
    assert s["intervals"] == 1
    assert s["optional_intervals"] == 1
    assert s["cumulatives"] == 1
