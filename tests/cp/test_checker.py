"""Solution checker: each violation class is detected."""

from repro.cp import CpModel
from repro.cp.checker import assert_valid, check_solution
from repro.cp.solution import Solution

import pytest


def _simple_model():
    m = CpModel(horizon=100)
    a = m.interval_var(length=10, est=5, name="a")
    b = m.interval_var(length=10, name="b")
    m.add_cumulative([a, b], capacity=1)
    m.engine()
    return m, a, b


def test_valid_solution_passes():
    m, a, b = _simple_model()
    sol = Solution(starts={a: 5, b: 15})
    assert check_solution(m, sol) == []
    assert_valid(m, sol)  # should not raise


def test_missing_start_detected():
    m, a, b = _simple_model()
    sol = Solution(starts={a: 5})
    assert any("missing start" in v for v in check_solution(m, sol))


def test_window_violation_detected():
    m, a, b = _simple_model()
    sol = Solution(starts={a: 2, b: 20})  # a before its est=5
    assert any("outside window" in v for v in check_solution(m, sol))


def test_capacity_violation_detected():
    m, a, b = _simple_model()
    sol = Solution(starts={a: 5, b: 8})
    assert any("exceeds capacity" in v for v in check_solution(m, sol))


def test_barrier_violation_detected():
    m = CpModel(horizon=100)
    mp = m.interval_var(length=10, name="map")
    rd = m.interval_var(length=5, name="red")
    m.add_barrier([mp], [rd])
    m.engine()
    sol = Solution(starts={mp: 0, rd: 5})
    assert any("before first stage ends" in v for v in check_solution(m, sol))


def test_precedence_violation_detected():
    m = CpModel(horizon=100)
    a = m.interval_var(length=10, name="a")
    b = m.interval_var(length=5, name="b")
    m.add_end_before_start(a, b)
    m.engine()
    sol = Solution(starts={a: 0, b: 5})
    assert any("precedence" in v for v in check_solution(m, sol))


def test_alternative_choice_required():
    m = CpModel(horizon=100)
    t = m.interval_var(length=5, name="t")
    o = m.interval_var(length=5, name="t@0", optional=True)
    m.add_alternative(t, [o])
    m.engine()
    sol = Solution(starts={t: 0})
    assert any("no option chosen" in v for v in check_solution(m, sol))
    sol2 = Solution(starts={t: 0}, choices={t: o})
    assert check_solution(m, sol2) == []


def test_foreign_option_detected():
    m = CpModel(horizon=100)
    t = m.interval_var(length=5, name="t")
    o = m.interval_var(length=5, name="t@0", optional=True)
    other = m.interval_var(length=5, name="x", optional=True)
    m.add_alternative(t, [o])
    m.engine()
    sol = Solution(starts={t: 0}, choices={t: other})
    assert any("not an option" in v for v in check_solution(m, sol))


def test_chosen_options_consume_capacity():
    m = CpModel(horizon=100)
    t1 = m.interval_var(length=10, name="t1")
    t2 = m.interval_var(length=10, name="t2")
    o1 = m.interval_var(length=10, name="t1@0", optional=True)
    o2 = m.interval_var(length=10, name="t2@0", optional=True)
    m.add_alternative(t1, [o1])
    m.add_alternative(t2, [o2])
    m.add_cumulative([o1, o2], capacity=1)
    m.engine()
    overlapping = Solution(starts={t1: 0, t2: 5}, choices={t1: o1, t2: o2})
    assert any("exceeds capacity" in v for v in check_solution(m, overlapping))
    fine = Solution(starts={t1: 0, t2: 10}, choices={t1: o1, t2: o2})
    assert check_solution(m, fine) == []


def test_objective_mismatch_detected():
    m = CpModel(horizon=100)
    a = m.interval_var(length=10, name="a")
    late = m.add_deadline_indicator([a], deadline=5)
    m.minimize_sum([late])
    m.engine()
    sol = Solution(starts={a: 0}, objective=0)  # actually late
    assert any("objective" in v for v in check_solution(m, sol))


def test_assert_valid_raises_with_details():
    m, a, b = _simple_model()
    sol = Solution(starts={a: 5, b: 8})
    with pytest.raises(AssertionError, match="exceeds capacity"):
        assert_valid(m, sol)
