"""Per-event wake lists, dirty tokens, and the trail/stamp save invariant.

The event system's contract (ISSUE 9 tentpole):

* a propagator subscribed to one event kind is woken only by that kind,
* FIX fires *in addition to* the bound event that caused it,
* dirty tokens are recorded on every wake -- including self-inflicted ones,
  whose re-enqueue is suppressed,
* ``EngineProfile`` counts wake dispatches per event kind, and
* ``IntDomain._restore`` resets ``_stamp`` so a domain restored by
  backtracking can never skip a needed trail save (property-tested below).
"""

from hypothesis import given, settings, strategies as st

from repro.cp.domain import (
    ANY_EVENT,
    FIX_EVENT,
    MAX_EVENT,
    MIN_EVENT,
    IntDomain,
)
from repro.cp.engine import Engine
from repro.cp.instrument import EngineProfile
from repro.cp.propagators.base import Propagator


class _Recorder(Propagator):
    """Propagator that records nothing and propagates nothing."""

    def propagate(self, engine):
        pass

    def watches(self):
        return ()


def _engine():
    eng = Engine()
    return eng


# ------------------------------------------------------------ wake routing
def test_min_watcher_ignores_max_changes():
    eng = _engine()
    d = IntDomain(0, 10, "d")
    p = _Recorder("p")
    d.watch(p, MIN_EVENT)
    d.set_max(8, eng)
    assert not p.queued
    d.set_min(2, eng)
    assert p.queued


def test_max_watcher_ignores_min_changes():
    eng = _engine()
    d = IntDomain(0, 10, "d")
    p = _Recorder("p")
    d.watch(p, MAX_EVENT)
    d.set_min(3, eng)
    assert not p.queued
    d.set_max(7, eng)
    assert p.queued


def test_fix_watcher_woken_only_on_singleton():
    eng = _engine()
    d = IntDomain(0, 10, "d")
    p = _Recorder("p")
    d.watch(p, FIX_EVENT)
    d.set_min(4, eng)
    d.set_max(6, eng)
    assert not p.queued  # bounds moved, domain still has 3 values
    d.set_min(6, eng)  # singleton via the lower bound
    assert p.queued


def test_fix_fires_in_addition_to_bound_event():
    eng = _engine()
    d = IntDomain(0, 10, "d")
    on_min = _Recorder("on_min")
    on_fix = _Recorder("on_fix")
    d.watch(on_min, MIN_EVENT)
    d.watch(on_fix, FIX_EVENT)
    d.set_min(10, eng)  # one mutation, singleton immediately
    assert on_min.queued and on_fix.queued


def test_fix_via_fix_method_wakes_both_bound_watchers():
    eng = _engine()
    d = IntDomain(0, 10, "d")
    p = _Recorder("p")
    d.watch(p, ANY_EVENT)
    d.fix(5, eng)
    assert p.queued


def test_subscription_lists_created_lazily():
    d = IntDomain(0, 10, "d")
    assert d.on_min is None and d.on_max is None and d.on_fix is None
    p = _Recorder("p")
    d.watch(p, MIN_EVENT)
    assert d.on_min == [(p, None)]
    assert d.on_max is None and d.on_fix is None  # untouched masks stay lazy


# --------------------------------------------------------- dirty tokens
def test_dirty_token_recorded_on_wake():
    eng = _engine()
    d = IntDomain(0, 10, "d")
    p = _Recorder("p")
    d.watch(p, MIN_EVENT, token=17)
    d.set_min(1, eng)
    assert 17 in p._dirty


def test_self_wake_suppressed_but_token_recorded():
    """The active propagator's own prune records its token, skips the queue."""
    eng = _engine()
    d = IntDomain(0, 10, "d")
    p = _Recorder("p")
    d.watch(p, MIN_EVENT, token="me")
    eng.active = p  # as if p were executing
    d.set_min(1, eng)
    assert "me" in p._dirty
    assert not p.queued
    eng.active = None
    d.set_min(2, eng)  # not the cause any more: normal wake
    assert p.queued


def test_explicit_cause_overrides_active():
    eng = _engine()
    d = IntDomain(0, 10, "d")
    p = _Recorder("p")
    d.watch(p, MIN_EVENT)
    d._save(eng)
    d._min = 3
    eng.wake(d.on_min, MIN_EVENT, cause=p)
    assert not p.queued


# --------------------------------------------------- per-event counters
def test_engine_profile_counts_events_per_kind():
    eng = _engine()
    eng.profile = profile = EngineProfile()
    d = IntDomain(0, 10, "d")
    p = _Recorder("p")
    d.watch(p, ANY_EVENT)
    d.set_min(2, eng)  # MIN
    d.set_max(7, eng)  # MAX
    p.queued = False
    d.set_max(2, eng)  # MAX, then FIX (singleton reached from above)
    assert profile.events_dict() == {"min": 1, "max": 2, "fix": 1, "other": 0}


def test_engine_profile_event_counters_merge():
    a, b = EngineProfile(), EngineProfile()
    a.count_event(MIN_EVENT)
    b.count_event(FIX_EVENT)
    b.count_event(0)  # unknown kind lands in "other"
    a.merge(b)
    assert a.events_dict() == {"min": 1, "max": 0, "fix": 1, "other": 1}


# ------------------------------------------- trail/stamp save invariant
@st.composite
def _ops(draw):
    """A random push/pop/tighten/fix script over two domains."""
    n = draw(st.integers(1, 40))
    out = []
    for _ in range(n):
        kind = draw(st.sampled_from(["push", "pop", "min", "max"]))
        out.append(
            (kind, draw(st.integers(0, 1)), draw(st.integers(0, 20)))
        )
    return out


@given(_ops())
@settings(max_examples=200, deadline=None)
def test_push_pop_tighten_never_skips_a_save(ops):
    """Bounds after every pop equal a model kept with explicit snapshots.

    ``Trail.magic`` is monotone while ``IntDomain._restore`` resets
    ``_stamp = 0``; if a restored domain ever kept a stale stamp equal to
    the current magic, its next tightening would skip the trail save and
    backtracking would silently lose the old bounds.  The snapshot model
    has no stamps at all, so any skipped save shows up as a divergence.
    """
    eng = _engine()
    doms = [IntDomain(0, 20, "a"), IntDomain(0, 20, "b")]
    eng.trail.push_level()  # root guard: record() is a no-op at level 0
    snapshots = [[(d._min, d._max) for d in doms]]
    for kind, which, v in ops:
        d = doms[which]
        if kind == "push":
            eng.trail.push_level()
            snapshots.append([(x._min, x._max) for x in doms])
        elif kind == "pop":
            if len(snapshots) > 1:
                eng.trail.pop_level()
                expect = snapshots.pop()
                assert [(x._min, x._max) for x in doms] == expect
        elif kind == "min":
            if d._min < v <= d._max:
                d.set_min(v, eng)
        elif kind == "max":
            if d._min <= v < d._max:
                d.set_max(v, eng)
    while len(snapshots) > 1:
        eng.trail.pop_level()
        expect = snapshots.pop()
        assert [(x._min, x._max) for x in doms] == expect
