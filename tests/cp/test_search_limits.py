"""SearchLimits budgets and brancher corner cases."""

from repro.cp import CpModel
from repro.cp.search import (
    SearchLimits,
    SetTimesBrancher,
    extract_solution,
    tree_search,
)
from repro.cp.solution import SearchStats

from tests.conftest import two_job_single_machine_model


def test_branch_limit():
    # five unit-capacity tasks with a huge horizon: the complete-mode tree
    # cannot possibly exhaust within five branches
    m = CpModel(horizon=500)
    bools = []
    for i in range(5):
        iv = m.interval_var(length=10, name=f"t{i}")
        bools.append(m.add_deadline_indicator([iv], deadline=10))
        m.add_group(f"j{i}", [iv], deadline=10)
    m.add_cumulative(m.intervals, capacity=1)
    m.minimize_sum(bools)
    engine = m.engine()
    engine.reset()
    result = tree_search(
        m,
        engine,
        SetTimesBrancher(m, jump=False),
        SearchLimits(branch_limit=5),
    )
    assert result.stats.branches <= 5
    assert not result.exhausted


def test_time_limit_checked_periodically():
    limits = SearchLimits.from_budget(time_budget=0.0)
    stats = SearchStats()
    stats.branches = 64  # the & 0x3F == 0 cadence
    assert limits.exceeded(stats)
    assert limits.hard_time_exceeded()


def test_no_limits_never_exceeded():
    limits = SearchLimits()
    stats = SearchStats()
    stats.branches = 10**6
    stats.fails = 10**6
    assert not limits.exceeded(stats)
    assert not limits.hard_time_exceeded()


def test_brancher_complete_flag():
    m = two_job_single_machine_model()
    assert SetTimesBrancher(m, jump=False).complete
    assert not SetTimesBrancher(m, jump=True).complete


def test_brancher_none_when_all_fixed():
    m = CpModel(horizon=20)
    m.fixed_interval(start=3, length=5, name="f")
    engine = m.engine()
    engine.reset()
    engine.propagate()
    assert SetTimesBrancher(m).choose(engine) is None


def test_extract_solution_reads_fixed_state():
    m = CpModel(horizon=20)
    iv = m.fixed_interval(start=3, length=5, name="f")
    engine = m.engine()
    engine.reset()
    engine.propagate()
    sol = extract_solution(m)
    assert sol.starts[iv] == 3


def test_search_on_empty_model():
    m = CpModel(horizon=10)
    engine = m.engine()
    engine.reset()
    result = tree_search(
        m, engine, SetTimesBrancher(m), SearchLimits.from_budget(time_budget=1.0)
    )
    assert result.best is not None
    assert result.best.starts == {}
