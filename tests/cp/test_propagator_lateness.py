"""Reified deadline-miss indicator."""

import pytest

from repro.cp.engine import Engine
from repro.cp.errors import Infeasible
from repro.cp.propagators.lateness import DeadlineIndicatorPropagator
from repro.cp.variables import BoolVar, IntervalVar


def _setup(tasks, deadline):
    eng = Engine()
    n = BoolVar("n")
    eng.register(DeadlineIndicatorPropagator(tasks, deadline, n))
    eng.seal()
    return eng, n


def test_provably_late_sets_indicator():
    t = IntervalVar(20, 30, 10, "t")  # ect = 30 > 25
    eng, n = _setup([t], deadline=25)
    eng.propagate()
    assert n.is_fixed and n.value == 1


def test_provably_on_time_clears_indicator():
    t = IntervalVar(0, 5, 10, "t")  # lct = 15 <= 20
    eng, n = _setup([t], deadline=20)
    eng.propagate()
    assert n.is_fixed and n.value == 0


def test_undecided_stays_open():
    t = IntervalVar(0, 30, 10, "t")  # could end at 10 or at 40
    eng, n = _setup([t], deadline=20)
    eng.propagate()
    assert not n.is_fixed


def test_forcing_on_time_imposes_due_dates():
    t1 = IntervalVar(0, 30, 10, "t1")
    t2 = IntervalVar(0, 30, 5, "t2")
    eng, n = _setup([t1, t2], deadline=20)
    n.set_false(eng)
    eng.propagate()
    assert t1.lst == 10  # end <= 20
    assert t2.lst == 15


def test_forcing_late_with_single_candidate_pushes_it():
    t1 = IntervalVar(0, 5, 10, "t1")  # lct 15 <= 20: can't be late
    t2 = IntervalVar(0, 30, 10, "t2")  # the only possible late task
    eng, n = _setup([t1, t2], deadline=20)
    n.set_true(eng)
    eng.propagate()
    assert t2.ect > 20  # pushed past the deadline


def test_forcing_late_when_impossible_fails():
    t = IntervalVar(0, 5, 10, "t")  # lct 15: always on time
    eng, n = _setup([t], deadline=20)
    n.set_true(eng)
    with pytest.raises(Infeasible):
        eng.propagate()


def test_completion_is_max_over_tasks():
    t1 = IntervalVar(0, 0, 10, "t1")  # ends at 10
    t2 = IntervalVar(15, 15, 10, "t2")  # ends at 25 > 20
    eng, n = _setup([t1, t2], deadline=20)
    eng.propagate()
    assert n.value == 1


def test_empty_task_list_rejected():
    with pytest.raises(ValueError):
        DeadlineIndicatorPropagator([], 10, BoolVar("n"))
