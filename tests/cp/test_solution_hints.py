"""Solution hints: the previous plan seeds the next solve."""

import pytest

from repro.cp import CpModel, CpSolver
from repro.cp.checker import check_solution
from repro.cp.heuristics import list_schedule

from tests.conftest import two_job_single_machine_model


def _simple_model():
    m = CpModel(horizon=100)
    a = m.interval_var(length=10, name="a")
    b = m.interval_var(length=10, name="b")
    m.add_cumulative([a, b], capacity=1)
    la = m.add_deadline_indicator([a], deadline=50)
    lb = m.add_deadline_indicator([b], deadline=50)
    m.add_group("ja", [a], deadline=50)
    m.add_group("jb", [b], deadline=50)
    m.minimize_sum([la, lb])
    m.engine()
    return m, a, b


def test_preplaced_starts_respected():
    m, a, b = _simple_model()
    sol = list_schedule(m, "edf", preplaced={a: 30})
    assert sol is not None
    assert sol.starts[a] == 30
    assert check_solution(m, sol) == []


def test_preplaced_conflict_aborts():
    m, a, b = _simple_model()
    # both at the same instant on a unit resource: impossible
    assert list_schedule(m, "edf", preplaced={a: 0, b: 0}) is None


def test_preplaced_outside_window_aborts():
    m, a, b = _simple_model()
    assert list_schedule(m, "edf", preplaced={a: 95}) is None  # lst is 90


def test_hint_used_by_solver():
    m, a, b = _simple_model()
    result = CpSolver().solve(m, hint={a: 20, b: 40}, time_limit=1.0)
    assert result.objective == 0
    # the hint was feasible and optimal, so it should be adopted verbatim
    assert result.solution.starts[a] == 20
    assert result.solution.starts[b] == 40


def test_infeasible_hint_silently_dropped():
    m, a, b = _simple_model()
    result = CpSolver().solve(m, hint={a: 0, b: 0}, time_limit=1.0)
    assert result.objective == 0  # fell back to the plain warm start
    assert check_solution(m, result.solution) == []


@pytest.mark.slow
def test_suboptimal_hint_improved_by_orders():
    # hint schedules both late; the plain EDF warm start finds 1 late
    m = two_job_single_machine_model()
    a, b = m.intervals
    result = CpSolver().solve(m, hint={a: 50, b: 70}, time_limit=2.0)
    assert result.objective == 1


def test_hint_respects_barrier():
    m = CpModel(horizon=100)
    mp = m.interval_var(length=5, name="mp")
    rd = m.interval_var(length=5, name="rd")
    m.add_cumulative([mp], capacity=1)
    m.add_cumulative([rd], capacity=1)
    m.add_barrier([mp], [rd])
    late = m.add_deadline_indicator([rd], deadline=60)
    m.add_group("j", [mp], [rd], deadline=60)
    m.minimize_sum([late])
    m.engine()
    # hint violating the barrier is rejected by the checker fallback
    result = CpSolver().solve(m, hint={mp: 10, rd: 0}, time_limit=1.0)
    assert result.status.has_solution
    sol = result.solution
    assert sol.starts[rd] >= sol.starts[mp] + 5


def test_preplaced_joint_mode_picks_resource():
    m = CpModel(horizon=100)
    t1 = m.interval_var(length=10, name="t1")
    t2 = m.interval_var(length=10, name="t2")
    pools = {0: [], 1: []}
    for t in (t1, t2):
        opts = []
        for rid in (0, 1):
            o = m.interval_var(length=10, name=f"{t.name}@r{rid}", optional=True)
            pools[rid].append(o)
            opts.append(o)
        m.add_alternative(t, opts)
    m.add_cumulative(pools[0], capacity=1)
    m.add_cumulative(pools[1], capacity=1)
    m.add_group("j1", [t1])
    m.add_group("j2", [t2])
    m.engine()
    sol = list_schedule(m, "edf", preplaced={t1: 5, t2: 5})
    assert sol is not None
    assert sol.starts[t1] == sol.starts[t2] == 5
    # simultaneous hints force distinct resources
    r1 = sol.choices[t1].name.split("@")[1]
    r2 = sol.choices[t2].name.split("@")[1]
    assert r1 != r2
    assert check_solution(m, sol) == []


def test_mrcp_rm_plans_stay_stable_with_hints():
    """With hints, an arrival that fits around the old plan should not
    reshuffle already-planned start times."""
    from repro.core import MrcpRm, MrcpRmConfig
    from repro.cp.solver import SolverParams
    from repro.metrics import MetricsCollector
    from repro.sim import Simulator
    from repro.workload import make_uniform_cluster
    from tests.conftest import make_job

    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim,
        make_uniform_cluster(2, 2, 2),
        MrcpRmConfig(use_hints=True, solver=SolverParams(time_limit=0.3)),
        metrics,
    )
    j1 = make_job(0, (10, 10, 10), deadline=1000)
    j2 = make_job(1, (5,), arrival=2, earliest_start=2, deadline=1000)
    sim.schedule_at(0, lambda: rm.submit(j1))
    sim.run(until=1)
    plan_before = {
        a.task.id: a.start for a in rm.executor.planned_unstarted()
    }
    sim.schedule_at(2, lambda: rm.submit(j2))
    sim.run()
    rm.executor.assert_quiescent()
    result = metrics.finalize()
    assert result.jobs_completed == 2
    assert result.late_jobs == 0
