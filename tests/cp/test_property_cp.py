"""Property-based tests for the CP substrate (hypothesis).

Three core properties:

1. The solver's solutions always validate against the declarative checker.
2. On tiny instances, complete-mode branch-and-bound matches brute force.
3. The time-table profile agrees with a naive per-instant recomputation.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.cp import CpModel, CpSolver, brute_force_min_late
from repro.cp.checker import check_solution
from repro.cp.domain import IntDomain
from repro.cp.profile import TimetableProfile
from repro.cp.solver import SolverParams
from repro.cp.trail import Trail


# ---------------------------------------------------------------- profiles
@st.composite
def usage_intervals(draw):
    n = draw(st.integers(1, 12))
    out = []
    for _ in range(n):
        s = draw(st.integers(0, 30))
        length = draw(st.integers(0, 10))
        d = draw(st.integers(0, 4))
        out.append((s, s + length, d))
    return out


@given(usage_intervals())
@settings(max_examples=150, deadline=None)
def test_profile_matches_naive_recomputation(intervals):
    p = TimetableProfile()
    for s, e, d in intervals:
        p.add(s, e, d)

    def naive_height(t):
        return sum(d for (s, e, d) in intervals if s <= t < e)

    for t in range(0, 45):
        assert p.height_at(t) == naive_height(t), t
    assert p.max_height() == max(
        (naive_height(t) for t in range(0, 45)), default=0
    )


@given(usage_intervals(), st.integers(0, 20), st.integers(1, 8), st.integers(1, 4))
@settings(max_examples=100, deadline=None)
def test_earliest_fit_result_actually_fits(intervals, est, length, cap):
    p = TimetableProfile()
    for s, e, d in intervals:
        p.add(s, e, d)
    fit = p.earliest_fit(est, 100, length, 1, cap)
    if fit is None:
        return
    assert fit >= est
    for t in range(fit, fit + length):
        assert p.height_at(t) + 1 <= cap
    # minimality: no earlier start fits
    for s in range(est, fit):
        assert any(
            p.height_at(t) + 1 > cap for t in range(s, s + length)
        ), f"start {s} also fits but earliest_fit returned {fit}"


# ------------------------------------------------------------------ domains
@given(
    st.lists(
        st.tuples(st.sampled_from(["min", "max", "push", "pop"]), st.integers(0, 40)),
        max_size=40,
    )
)
@settings(max_examples=150, deadline=None)
def test_domain_trail_invariants(ops):
    """Random mutate/push/pop sequences keep min<=max and restore exactly."""

    class _Eng:
        def __init__(self):
            self.trail = Trail()

        def wake(self, watchers):
            pass

    eng = _Eng()
    d = IntDomain(0, 40, "d")
    # Changes at the root level are permanent by design; open a base level
    # so every mutation in this test is trailed.
    eng.trail.push_level()
    snapshots = [(0, 40)]  # bounds at each push
    for op, v in ops:
        if op == "push":
            eng.trail.push_level()
            snapshots.append((d.min, d.max))
        elif op == "pop":
            if len(snapshots) > 1:
                eng.trail.pop_level()
                assert (d.min, d.max) == snapshots.pop()
        elif op == "min":
            if v <= d.max:
                d.set_min(v, eng)
        else:
            if v >= d.min:
                d.set_max(v, eng)
        assert d.min <= d.max
    while snapshots:
        eng.trail.pop_level()
        assert (d.min, d.max) == snapshots.pop()
    assert (d.min, d.max) == (0, 40)


# ---------------------------------------------- solver vs brute force
@st.composite
def tiny_instances(draw):
    """1-3 single-task jobs on one unit resource with a short horizon."""
    n = draw(st.integers(1, 3))
    horizon = draw(st.integers(8, 14))
    jobs = []
    for _ in range(n):
        length = draw(st.integers(1, 4))
        deadline = draw(st.integers(2, horizon))
        jobs.append((length, deadline))
    return horizon, jobs


def _build(horizon, jobs):
    m = CpModel(horizon=horizon)
    bools = []
    for i, (length, deadline) in enumerate(jobs):
        iv = m.interval_var(length=length, lst=horizon - length, name=f"t{i}")
        bools.append(m.add_deadline_indicator([iv], deadline=deadline))
        m.add_group(f"j{i}", [iv], deadline=deadline)
    m.add_cumulative(m.intervals, capacity=1)
    m.minimize_sum(bools)
    return m


@given(tiny_instances())
@settings(max_examples=40, deadline=None)
def test_solver_matches_brute_force_on_tiny_instances(instance):
    """Complete-mode B&B agrees with exhaustive enumeration -- including
    infeasibility proofs (the horizon can be too short to pack all tasks)."""
    horizon, jobs = instance
    brute = brute_force_min_late(_build(horizon, jobs))

    model = _build(horizon, jobs)
    solver = CpSolver(
        SolverParams(time_limit=10.0, jump_branching=False, tree_fail_limit=None)
    )
    result = solver.solve(model)
    if brute is None:
        assert not result.status.has_solution
        return
    assert result.status.has_solution
    assert result.objective == brute[0]
    assert check_solution(model, result.solution) == []


@pytest.mark.slow
@given(tiny_instances())
@settings(max_examples=40, deadline=None)
def test_default_solver_never_invalid_and_never_below_optimum(instance):
    horizon, jobs = instance
    brute = brute_force_min_late(_build(horizon, jobs))
    model = _build(horizon, jobs)
    result = CpSolver(SolverParams(time_limit=2.0)).solve(model)
    if brute is None:
        assert not result.status.has_solution
        return
    assert result.status.has_solution
    assert check_solution(model, result.solution) == []
    assert result.objective >= brute[0]  # can't beat the true optimum
