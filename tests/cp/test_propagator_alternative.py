"""Alternative constraint propagation."""

import pytest

from repro.cp.engine import Engine
from repro.cp.errors import Infeasible
from repro.cp.propagators.alternative import AlternativePropagator
from repro.cp.variables import IntervalVar


def _alt(master_window=(0, 50), opt_windows=((0, 50), (0, 50)), length=5):
    eng = Engine()
    master = IntervalVar(*master_window, length, "m")
    options = [
        IntervalVar(lo, hi, length, f"o{i}", optional=True)
        for i, (lo, hi) in enumerate(opt_windows)
    ]
    eng.register(AlternativePropagator(master, options))
    eng.seal()
    return eng, master, options


def test_all_absent_fails():
    eng, master, opts = _alt()
    for o in opts:
        o.presence.domain.set_max(0, eng)
    with pytest.raises(Infeasible):
        eng.propagate()


def test_single_remaining_option_forced_present():
    eng, master, opts = _alt()
    opts[0].set_absent(eng)
    eng.propagate()
    assert opts[1].is_present


def test_present_option_excludes_others():
    eng, master, opts = _alt()
    opts[0].set_present(eng)
    eng.propagate()
    assert opts[1].is_absent


def test_two_present_options_fail():
    eng, master, opts = _alt()
    opts[0].presence.domain.set_min(1, eng)
    opts[1].presence.domain.set_min(1, eng)
    with pytest.raises(Infeasible):
        eng.propagate()


def test_chosen_option_syncs_with_master():
    eng, master, opts = _alt()
    opts[0].set_present(eng)
    master.set_start_min(7, eng)
    master.set_start_max(20, eng)
    eng.propagate()
    assert opts[0].est == 7 and opts[0].lst == 20
    # and back: tightening the option tightens the master
    opts[0].set_start_min(10, eng)
    eng.propagate()
    assert master.est == 10


def test_master_window_is_union_of_options():
    eng, master, opts = _alt(opt_windows=((5, 10), (20, 30)))
    eng.propagate()
    assert master.est == 5
    assert master.lst == 30


def test_option_window_intersected_with_master():
    eng, master, opts = _alt(master_window=(8, 25), opt_windows=((0, 50), (0, 50)))
    eng.propagate()
    for o in opts:
        assert o.est == 8 and o.lst == 25


def test_option_with_empty_intersection_becomes_absent():
    eng, master, opts = _alt(master_window=(15, 25), opt_windows=((0, 10), (0, 50)))
    eng.propagate()
    assert opts[0].is_absent
    assert opts[1].is_present  # only one left


def test_mismatched_length_rejected():
    master = IntervalVar(0, 10, 5, "m")
    bad = IntervalVar(0, 10, 6, "o", optional=True)
    with pytest.raises(ValueError):
        AlternativePropagator(master, [bad])


def test_non_optional_option_rejected():
    master = IntervalVar(0, 10, 5, "m")
    bad = IntervalVar(0, 10, 5, "o")
    with pytest.raises(ValueError):
        AlternativePropagator(master, [bad])


def test_no_options_rejected():
    master = IntervalVar(0, 10, 5, "m")
    with pytest.raises(ValueError):
        AlternativePropagator(master, [])
