"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out and "fig9" in out and "ablation-separation" in out


def test_demo_command(capsys):
    assert main(["demo", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "late jobs (N)" in out
    assert "10/10" in out


def test_trace_command(tmp_path, capsys):
    out_file = tmp_path / "trace.json"
    assert main(["trace", str(out_file), "--seed", "2"]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["jobs"]
    assert "wrote" in capsys.readouterr().out


def test_trace_facebook(tmp_path):
    out_file = tmp_path / "fb.json"
    assert main(["trace", str(out_file), "--workload", "facebook"]) == 0
    assert json.loads(out_file.read_text())["jobs"]


def test_trace_workflow(tmp_path):
    out_file = tmp_path / "wf.json"
    assert main(["trace", str(out_file), "--workload", "workflow"]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["kind"] == "workflow"
    assert payload["workflows"]


def test_run_command_end_to_end(capsys, monkeypatch):
    """`mrcp-rm run` executes a (shrunken) figure and prints its table."""
    from dataclasses import replace

    import repro.experiments.configs as C

    original = C.default_synthetic_params

    def tiny(profile):
        return replace(
            original(profile),
            num_jobs=4,
            map_tasks_range=(1, 3),
            reduce_tasks_range=(1, 2),
            arrival_rate=0.05,
        )

    monkeypatch.setattr(C, "default_synthetic_params", tiny)
    assert main(["run", "fig7", "--replications", "1", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "fig7" in out
    assert "P (%)" in out


def test_run_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_report_command(tmp_path, capsys):
    """`mrcp-rm report` writes a self-contained HTML report."""
    out_file = tmp_path / "report.html"
    assert main(
        ["report", "--out", str(out_file), "--jobs", "8", "--seed", "1"]
    ) == 0
    html = out_file.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html and "<script" not in html
    assert "Live timeline" in html
    assert "report written" in capsys.readouterr().out


def test_report_command_with_faults(tmp_path, capsys):
    out_file = tmp_path / "report.html"
    assert main(
        ["report", "--out", str(out_file), "--jobs", "8", "--seed", "2",
         "--faults"]
    ) == 0
    assert "fault-injected" in out_file.read_text()


def test_bench_command_replay(tmp_path, capsys):
    """`mrcp-rm bench --replay` compares without re-running the suite."""
    from repro.bench import DEFAULT_BASELINE, load_result, write_result

    result = load_result(DEFAULT_BASELINE)
    replay = tmp_path / "current.json"
    write_result(str(replay), result)
    assert main(["bench", "--replay", str(replay)]) == 0
    assert "ok:" in capsys.readouterr().out
    assert main(["bench", "--replay", str(replay), "--inflate", "2.0"]) == 1


def _shrink_synthetic(monkeypatch):
    from dataclasses import replace

    import repro.experiments.configs as C

    original = C.default_synthetic_params

    def tiny(profile):
        return replace(
            original(profile),
            num_jobs=4,
            map_tasks_range=(1, 3),
            reduce_tasks_range=(1, 2),
            arrival_rate=0.05,
        )

    monkeypatch.setattr(C, "default_synthetic_params", tiny)


def test_sweep_command_writes_merged_artifacts(tmp_path, capsys, monkeypatch):
    """`mrcp-rm sweep` runs a figure grid and writes sweep.json/sweep.csv."""
    _shrink_synthetic(monkeypatch)
    out_dir = tmp_path / "sweep"
    assert main(
        ["sweep", "fig7", "--replications", "1", "--workers", "1",
         "--out-dir", str(out_dir)]
    ) == 0
    out = capsys.readouterr().out
    assert "sweep fig7" in out
    doc = json.loads((out_dir / "sweep.json").read_text())
    assert doc["schema"] == "repro-sweep/1"
    assert all(c["status"] == "ok" for c in doc["cells"])
    assert (out_dir / "sweep.csv").read_text().startswith("index,figure,label")


def test_sweep_command_parallel_matches_sequential(tmp_path, monkeypatch):
    """The CLI byte-identity contract: --workers N == --workers 1."""
    _shrink_synthetic(monkeypatch)
    seq, par = tmp_path / "seq", tmp_path / "par"
    assert main(
        ["sweep", "fig7", "--replications", "1", "--workers", "1",
         "--out-dir", str(seq), "--quiet"]
    ) == 0
    assert main(
        ["sweep", "fig7", "--replications", "1", "--workers", "2",
         "--out-dir", str(par), "--quiet"]
    ) == 0
    for name in ("sweep.json", "sweep.csv"):
        assert (seq / name).read_bytes() == (par / name).read_bytes()


def test_sweep_command_report(tmp_path, monkeypatch):
    _shrink_synthetic(monkeypatch)
    out_dir = tmp_path / "sweep"
    assert main(
        ["sweep", "fig7", "--replications", "1", "--out-dir", str(out_dir),
         "--capture", "--report", "--quiet"]
    ) == 0
    html = (out_dir / "sweep.html").read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "Sweep summary" in html and "<script" not in html


def test_telemetry_command_overload(tmp_path, capsys):
    """`mrcp-rm telemetry` writes validated artifacts and prints alerts."""
    out_dir = tmp_path / "tele"
    assert main(
        ["telemetry", "--scenario", "overload", "--seed", "0",
         "--out-dir", str(out_dir)]
    ) == 0
    out = capsys.readouterr().out
    assert "SLO ALERT fired" in out
    assert "(validated)" in out

    from repro.obs.export import validate_openmetrics
    from repro.obs.timeseries import read_series_jsonl

    assert validate_openmetrics(
        (out_dir / "telemetry.prom").read_text()
    ) == []
    meta, samples = read_series_jsonl(str(out_dir / "series.jsonl"))
    assert meta["samples"] == len(samples) > 0
    assert samples[-1]["final"] is True
    alerts = [
        json.loads(line)
        for line in (out_dir / "alerts.jsonl").read_text().splitlines()
    ]
    assert any(a["state"] == "fired" for a in alerts)


def test_telemetry_command_steady_scenario(tmp_path, capsys):
    out_dir = tmp_path / "tele"
    assert main(
        ["telemetry", "--scenario", "steady", "--seed", "1",
         "--out-dir", str(out_dir)]
    ) == 0
    assert "telemetry run (steady, seed 1)" in capsys.readouterr().out
    assert (out_dir / "series.jsonl").exists()


def test_faults_command_prints_tardiness(capsys):
    """Fault-injected demo surfaces tardiness severity when jobs are late."""
    assert main(["faults", "--seed", "1", "--failure-prob", "0.4"]) == 0
    out = capsys.readouterr().out
    assert "fault-injected demo" in out
    # severity line appears exactly when the run produced late jobs
    if "late jobs (N)                 : 0" not in out:
        assert "tardiness mean/p95/max" in out


def test_diff_capture_then_self_diff(tmp_path, capsys):
    """`diff --capture` materialises a run dir that self-diffs clean."""
    run_dir = tmp_path / "run-a"
    assert main(
        ["diff", "--capture", str(run_dir), "--label", "pinned"]
    ) == 0
    out = capsys.readouterr().out
    assert "captured run" in out
    assert (run_dir / "run.json").exists()
    assert (run_dir / "plans.json").exists()
    assert main(["diff", str(run_dir), str(run_dir), "--quiet"]) == 0


def test_diff_requires_two_inputs_without_capture(capsys):
    assert main(["diff"]) == 2
    assert "two inputs" in capsys.readouterr().err


def test_diff_html_report(tmp_path, capsys):
    run_dir = tmp_path / "run"
    assert main(["diff", "--capture", str(run_dir), "--quiet"]) == 0
    capsys.readouterr()
    html = tmp_path / "diff.html"
    assert main(
        ["diff", str(run_dir), str(run_dir), "--html", str(html), "--quiet"]
    ) == 0
    text = html.read_text()
    assert text.startswith("<!DOCTYPE html>") and "MRCP-RM run diff" in text


def test_diff_listed_in_cli_help(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    assert "diff" in capsys.readouterr().out


def test_loadtest_command_inprocess(tmp_path, capsys):
    report_file = tmp_path / "load.json"
    assert main([
        "loadtest", "--requests", "20", "--seed", "2",
        "--json", str(report_file), "--quotes",
    ]) == 0
    out = capsys.readouterr().out
    assert "in-process (deterministic)" in out
    assert "admitted / rejected / shed" in out
    assert "verdict digest" in out
    payload = json.loads(report_file.read_text())
    assert payload["requests"] == 20
    assert payload["admitted"] + payload["rejected"] + payload["shed"] == 20
    assert len(payload["digest"]) == 16
    assert len(payload["quotes"]) == 20


def test_loadtest_replay_digest_is_stable(capsys):
    digests = []
    for _ in range(2):
        assert main(["loadtest", "--requests", "15", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        digests.append(
            next(l for l in out.splitlines() if "verdict digest" in l)
        )
    assert digests[0] == digests[1]


def test_serve_and_loadtest_parsers_wired():
    parser = build_parser()
    serve = parser.parse_args(["serve", "--port", "0", "--resources", "2"])
    assert serve.func.__name__ == "_cmd_serve"
    assert serve.port == 0 and serve.resources == 2
    load = parser.parse_args(
        ["loadtest", "--requests", "50", "--max-batch-size", "4"]
    )
    assert load.func.__name__ == "_cmd_loadtest"
    assert load.requests == 50 and load.max_batch_size == 4
    assert load.url is None


def test_serve_loadtest_listed_in_cli_help(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    out = capsys.readouterr().out
    assert "serve" in out and "loadtest" in out
