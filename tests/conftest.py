"""Shared test fixtures and model-building helpers."""

from __future__ import annotations

import pytest

from repro.cp import CpModel
from repro.workload.entities import Job, Resource, Task, TaskKind


def make_task(
    task_id: str,
    job_id: int = 0,
    kind: TaskKind = TaskKind.MAP,
    duration: int = 5,
) -> Task:
    return Task(id=task_id, job_id=job_id, kind=kind, duration=duration)


def make_job(
    job_id: int,
    map_durations=(5,),
    reduce_durations=(),
    arrival: int = 0,
    earliest_start: int = 0,
    deadline: int = 1000,
) -> Job:
    maps = [
        make_task(f"t{job_id}_m{i}", job_id, TaskKind.MAP, d)
        for i, d in enumerate(map_durations)
    ]
    reduces = [
        make_task(f"t{job_id}_r{i}", job_id, TaskKind.REDUCE, d)
        for i, d in enumerate(reduce_durations)
    ]
    return Job(
        id=job_id,
        arrival_time=arrival,
        earliest_start=earliest_start,
        deadline=deadline,
        map_tasks=maps,
        reduce_tasks=reduces,
    )


def two_job_single_machine_model(horizon: int = 100) -> CpModel:
    """Two unit-capacity jobs competing for one slot; one must be late."""
    m = CpModel(horizon=horizon)
    a = m.interval_var(length=10, name="a")
    b = m.interval_var(length=10, name="b")
    m.add_cumulative([a, b], capacity=1)
    la = m.add_deadline_indicator([a], deadline=10, name="late_a")
    lb = m.add_deadline_indicator([b], deadline=10, name="late_b")
    m.add_group("ja", [a], deadline=10)
    m.add_group("jb", [b], deadline=10)
    m.minimize_sum([la, lb])
    return m


@pytest.fixture
def small_resources():
    return [Resource(0, 2, 2), Resource(1, 2, 2)]
