"""Runtime fault injection end to end: recovery, determinism, invariants.

The companion to ``test_defensive_layers.py`` (internal-corruption nets):
here the *environment* misbehaves -- task attempts die, stragglers run
long, resources drop out -- and the system must recover, stay internally
consistent, and reproduce exactly under the same seed.
"""

import random

import pytest

from repro.core import MrcpRm, MrcpRmConfig
from repro.core.formulation import FormulationMode
from repro.cp.solver import SolverParams
from repro.faults import FaultModel, OutageWindow
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload.entities import make_uniform_cluster

from tests.conftest import make_job


def _scenario_jobs(rng, n_jobs):
    jobs = []
    t = 0
    for i in range(n_jobs):
        t += rng.randint(0, 8)
        jobs.append(
            make_job(
                i,
                tuple(rng.randint(2, 8) for _ in range(rng.randint(1, 4))),
                tuple(rng.randint(2, 6) for _ in range(rng.randint(0, 2))),
                arrival=t,
                earliest_start=t,
                deadline=t + 400,
            )
        )
    return jobs


def _build(jobs, config):
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(sim, make_uniform_cluster(2, 2, 2), config, metrics)
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: rm.submit(j))
    return sim, metrics, rm


FULL_SCENARIO = dict(
    task_failure_prob=0.2,
    straggler_prob=0.15,
    straggler_factor=2.5,
    outages=(OutageWindow(0, 30.0, 40.0),),
)


def _full_run(seed):
    config = MrcpRmConfig(
        solver=SolverParams(time_limit=0.3),
        faults=FaultModel(seed=seed, **FULL_SCENARIO),
    )
    jobs = _scenario_jobs(random.Random(seed), 8)
    sim, metrics, rm = _build(jobs, config)
    sim.run()
    rm.executor.assert_quiescent()
    return metrics.finalize()


def test_faulted_run_completes_and_attributes_failures():
    m = _full_run(seed=11)
    assert m.jobs_completed + m.jobs_failed == m.jobs_arrived
    d = m.as_dict()
    assert d["failures_injected"] > 0
    assert d["stragglers_injected"] > 0
    assert d["outages"] == 1
    assert d["retries"] > 0
    assert d["replans_on_failure"] > 0


def test_faulted_run_is_reproducible():
    a, b = _full_run(seed=11), _full_run(seed=11)
    da, db = a.as_dict(), b.as_dict()
    da.pop("O"), db.pop("O")  # wall-clock overhead is the only noise
    assert da == db
    assert a.makespan == b.makespan
    assert a.turnarounds == b.turnarounds
    assert a.failed_job_ids == b.failed_job_ids


def _check_slot_invariants(executor):
    """No slot hosts two running tasks; per-(resource, kind) counts fit."""
    occupied = set()
    counts = {}
    for a in executor.snapshot_running():
        key = (a.resource_id, a.task.kind, a.slot_index)
        assert key not in occupied, f"slot {key} double-booked"
        occupied.add(key)
        ck = (a.resource_id, a.task.kind)
        counts[ck] = counts.get(ck, 0) + 1
    from repro.workload.entities import TaskKind

    for (rid, kind), n in counts.items():
        resource = executor.resource_by_id[rid]
        cap = (
            resource.map_capacity
            if kind is TaskKind.MAP
            else resource.reduce_capacity
        )
        assert n <= cap, f"resource {rid} {kind}: {n} running > {cap} slots"


@pytest.mark.parametrize("mode", [FormulationMode.COMBINED, FormulationMode.JOINT])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_invariants_hold_under_randomized_faults(mode, seed):
    """Property-style: whatever the fault schedule, every intermediate
    state respects slot occupancy, and the run drains quiescent with every
    job accounted for."""
    rng = random.Random(1000 + seed)
    config = MrcpRmConfig(
        mode=mode,
        solver=SolverParams(time_limit=0.2),
        max_task_retries=2,
        faults=FaultModel(
            task_failure_prob=rng.uniform(0.1, 0.35),
            straggler_prob=rng.uniform(0.0, 0.25),
            straggler_factor=rng.uniform(1.5, 3.0),
            jitter_sigma=rng.uniform(0.0, 0.15),
            outages=(
                OutageWindow(
                    rng.randrange(2),
                    rng.uniform(10.0, 40.0),
                    rng.uniform(10.0, 30.0),
                ),
            ),
            seed=seed,
        ),
    )
    jobs = _scenario_jobs(rng, 6)
    sim, metrics, rm = _build(jobs, config)
    while sim.step():
        _check_slot_invariants(rm.executor)
    rm.executor.assert_quiescent()
    result = metrics.finalize()
    assert result.jobs_completed + result.jobs_failed == result.jobs_arrived
    assert result.jobs_arrived == 6
