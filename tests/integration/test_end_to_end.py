"""Integration tests: full open-system runs across the whole stack."""

import pytest

from repro.core import MrcpRm, MrcpRmConfig
from repro.core.formulation import FormulationMode
from repro.cp.solver import SolverParams
from repro.experiments.runner import RunConfig, SystemConfig, run_once
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload import (
    FacebookWorkloadParams,
    SyntheticWorkloadParams,
    generate_facebook_workload,
    generate_synthetic_workload,
    make_uniform_cluster,
)


def _mrcp_run(jobs, resources, config=None):
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim,
        resources,
        config or MrcpRmConfig(solver=SolverParams(time_limit=0.2)),
        metrics,
    )
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: rm.submit(j))
    sim.run()
    rm.executor.assert_quiescent()
    return metrics.finalize()


def test_synthetic_open_system_mrcp():
    params = SyntheticWorkloadParams(
        num_jobs=15,
        map_tasks_range=(1, 10),
        reduce_tasks_range=(1, 5),
        e_max=10,
        ar_probability=0.4,
        s_max=300,
        deadline_multiplier_max=4.0,
        arrival_rate=0.05,
        total_map_slots=8,
        total_reduce_slots=8,
    )
    jobs = generate_synthetic_workload(params, seed=21)
    metrics = _mrcp_run(jobs, make_uniform_cluster(4, 2, 2))
    assert metrics.jobs_completed == 15
    assert metrics.proportion_late <= 0.2  # generous deadlines, ample slack
    assert metrics.avg_sched_overhead < 0.5


def test_facebook_open_system_mrcp():
    params = FacebookWorkloadParams(
        num_jobs=12, arrival_rate=0.0005, scale=0.05,
        total_map_slots=8, total_reduce_slots=8,
    )
    jobs = generate_facebook_workload(params, seed=4)
    metrics = _mrcp_run(jobs, make_uniform_cluster(8, 1, 1))
    assert metrics.jobs_completed == 12


def test_modes_agree_on_job_completion():
    """Combined and joint formulations must both complete every job and
    produce comparable lateness on the same stream."""
    params = SyntheticWorkloadParams(
        num_jobs=8, map_tasks_range=(1, 5), reduce_tasks_range=(1, 3),
        e_max=10, arrival_rate=0.05, deadline_multiplier_max=3.0,
        total_map_slots=4, total_reduce_slots=4,
    )
    outcomes = {}
    for mode in (FormulationMode.COMBINED, FormulationMode.JOINT):
        jobs = generate_synthetic_workload(params, seed=31)
        cfg = MrcpRmConfig(mode=mode, solver=SolverParams(time_limit=0.3))
        outcomes[mode] = _mrcp_run(jobs, make_uniform_cluster(2, 2, 2), cfg)
    for metrics in outcomes.values():
        assert metrics.jobs_completed == 8
    assert (
        abs(
            outcomes[FormulationMode.COMBINED].late_jobs
            - outcomes[FormulationMode.JOINT].late_jobs
        )
        <= 1
    )


@pytest.mark.slow
def test_mrcp_beats_or_matches_fcfs_on_late_jobs():
    """The headline claim at miniature scale: deadline-aware CP scheduling
    produces no more late jobs than deadline-oblivious FCFS."""
    base = dict(
        workload="synthetic",
        synthetic=SyntheticWorkloadParams(
            num_jobs=12,
            map_tasks_range=(1, 6),
            reduce_tasks_range=(1, 3),
            e_max=10,
            ar_probability=0.0,
            deadline_multiplier_max=1.5,
            arrival_rate=0.2,
        ),
        system=SystemConfig(num_resources=2, map_slots=2, reduce_slots=2),
    )
    late = {}
    for scheduler in ("mrcp-rm", "fcfs"):
        total = 0
        for rep in range(3):
            cfg = RunConfig(scheduler=scheduler, **base)
            cfg.mrcp.solver.time_limit = 0.2
            total += run_once(cfg, replication=rep).late_jobs
        late[scheduler] = total
    assert late["mrcp-rm"] <= late["fcfs"]


@pytest.mark.slow
def test_mrcp_beats_or_matches_minedf_on_late_jobs():
    base = dict(
        workload="synthetic",
        synthetic=SyntheticWorkloadParams(
            num_jobs=12,
            map_tasks_range=(1, 6),
            reduce_tasks_range=(1, 3),
            e_max=10,
            ar_probability=0.0,
            deadline_multiplier_max=1.5,
            arrival_rate=0.2,
        ),
        system=SystemConfig(num_resources=2, map_slots=2, reduce_slots=2),
    )
    late = {}
    for scheduler in ("mrcp-rm", "minedf-wc"):
        total = 0
        for rep in range(3):
            cfg = RunConfig(scheduler=scheduler, **base)
            cfg.mrcp.solver.time_limit = 0.2
            total += run_once(cfg, replication=rep).late_jobs
        late[scheduler] = total
    assert late["mrcp-rm"] <= late["minedf-wc"]


@pytest.mark.slow
def test_replanning_never_loses_to_schedule_once():
    params = SyntheticWorkloadParams(
        num_jobs=10, map_tasks_range=(1, 6), reduce_tasks_range=(1, 3),
        e_max=10, ar_probability=0.0, deadline_multiplier_max=1.5,
        arrival_rate=0.3, total_map_slots=4, total_reduce_slots=4,
    )
    late = {}
    for replan in (True, False):
        total = 0
        for seed in (41, 42, 43):
            jobs = generate_synthetic_workload(params, seed=seed)
            cfg = MrcpRmConfig(replan=replan, solver=SolverParams(time_limit=0.2))
            total += _mrcp_run(jobs, make_uniform_cluster(2, 2, 2), cfg).late_jobs
        late[replan] = total
    assert late[True] <= late[False]


def test_deferral_equivalence_on_outcomes():
    """EST deferral is a performance optimisation; late-job counts should
    not degrade when it is enabled."""
    params = SyntheticWorkloadParams(
        num_jobs=10, map_tasks_range=(1, 5), reduce_tasks_range=(1, 2),
        e_max=8, ar_probability=0.9, s_max=500, deadline_multiplier_max=4.0,
        arrival_rate=0.1, total_map_slots=4, total_reduce_slots=4,
    )
    outcomes = {}
    for deferral in (True, False):
        jobs = generate_synthetic_workload(params, seed=51)
        cfg = MrcpRmConfig(
            est_deferral=deferral, solver=SolverParams(time_limit=0.2)
        )
        outcomes[deferral] = _mrcp_run(jobs, make_uniform_cluster(2, 2, 2), cfg)
    assert outcomes[True].jobs_completed == outcomes[False].jobs_completed == 10
    assert outcomes[True].late_jobs <= outcomes[False].late_jobs + 1


def test_determinism_full_stack():
    cfg = RunConfig(
        scheduler="mrcp-rm",
        workload="synthetic",
        synthetic=SyntheticWorkloadParams(
            num_jobs=8, map_tasks_range=(1, 5), reduce_tasks_range=(1, 2),
            e_max=8, arrival_rate=0.1,
        ),
        system=SystemConfig(num_resources=2, map_slots=2, reduce_slots=2),
    )
    cfg.mrcp.solver.time_limit = 0.2
    a = run_once(cfg, replication=0)
    b = run_once(cfg, replication=0)
    assert a.late_jobs == b.late_jobs
    assert a.avg_turnaround == b.avg_turnaround
    assert a.makespan == b.makespan
    assert a.turnarounds == b.turnarounds
