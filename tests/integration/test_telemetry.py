"""Live telemetry end to end: zero overhead, exact finals, determinism.

The zero-overhead contract needs a pinned wall clock in *both* arms:
measured overhead O counts clock draws, and a real ``perf_counter`` makes
O different run to run regardless of telemetry.
"""

import json
from dataclasses import replace

from repro.experiments.pool import PinnedClock
from repro.experiments.runner import (
    RunConfig,
    SystemConfig,
    build_live_run,
    run_once,
)
from repro.obs import ObsConfig
from repro.obs.export import (
    render_openmetrics,
    render_series_openmetrics,
    validate_openmetrics,
)
from repro.obs.timeseries import TelemetryConfig, read_series_jsonl
from repro.workload import SyntheticWorkloadParams

SEED = 7


def _config(telemetry=None):
    return RunConfig(
        workload="synthetic",
        synthetic=SyntheticWorkloadParams(
            num_jobs=6,
            map_tasks_range=(1, 4),
            reduce_tasks_range=(1, 2),
            e_max=8,
            ar_probability=0.3,
            s_max=150,
            deadline_multiplier_max=3.0,
            arrival_rate=0.05,
        ),
        system=SystemConfig(num_resources=3),
        obs=ObsConfig(wall_clock=PinnedClock(), telemetry=telemetry),
        seed=SEED,
    )


def _telemetry(**kw):
    kw.setdefault("enabled", True)
    kw.setdefault("interval", 5.0)
    return TelemetryConfig(**kw)


def _overload_config(seed=0, telemetry=None):
    """The CLI's overload-burst scenario: 10x arrivals, degrading ladder."""
    from repro.resilience.chaos import (
        default_chaos_config,
        escalation_ladder,
        fresh_run_config,
    )

    config = default_chaos_config(
        seed=seed, faults=False, ladder=escalation_ladder()
    )
    config = replace(
        config,
        synthetic=replace(
            config.synthetic,
            arrival_rate=config.synthetic.arrival_rate * 10.0,
        ),
    )
    config = fresh_run_config(config)
    if telemetry is not None:
        config = replace(config, obs=replace(config.obs, telemetry=telemetry))
    return config


# ------------------------------------------------------------ zero overhead


def test_telemetry_on_equals_off_ontp():
    """Sampling must never change the paper metrics, O included."""
    off = run_once(_config(telemetry=None))
    on = run_once(_config(telemetry=_telemetry()))
    assert off.as_dict() == on.as_dict()
    assert off.turnarounds == on.turnarounds
    assert off.late_job_ids == on.late_job_ids


# ------------------------------------------------------------- final sample


def test_final_sample_matches_finalized_metrics():
    run = build_live_run(_config(telemetry=_telemetry()))
    metrics = run.finish()
    last = run.sampler.store.last
    assert last["final"] is True
    assert {k: last[k] for k in ("O", "N", "T", "P")} == metrics.as_dict()
    assert last["jobs_completed"] == metrics.jobs_completed
    assert last["invocations"] == metrics.scheduler_invocations


def test_series_file_written_and_conformant(tmp_path):
    series = str(tmp_path / "series.jsonl")
    telemetry = _telemetry(series_out=series)
    run = build_live_run(_config(telemetry=telemetry))
    run.finish()
    meta, samples = read_series_jsonl(series)
    assert meta["samples"] == len(samples) > 1
    assert samples[-1]["final"] is True
    # the sampled series also renders to valid OpenMetrics
    assert validate_openmetrics(render_series_openmetrics(samples)) == []
    assert validate_openmetrics(render_openmetrics(run.tracer.registry)) == []


# -------------------------------------------------------------- determinism


def test_series_byte_identical_across_same_seed_runs(tmp_path):
    paths = []
    for name in ("a.jsonl", "b.jsonl"):
        series = str(tmp_path / name)
        run = build_live_run(_config(telemetry=_telemetry(series_out=series)))
        run.finish()
        paths.append(series)
    a, b = (open(p, "rb").read() for p in paths)
    assert a == b


def test_overload_burst_fires_deterministic_slo_alert(tmp_path):
    fired_sets = []
    for rep in range(2):
        alerts = str(tmp_path / f"alerts-{rep}.jsonl")
        run = build_live_run(
            _overload_config(telemetry=_telemetry(alerts_out=alerts))
        )
        run.finish()
        assert run.slo_monitor is not None
        fired = run.slo_monitor.fired
        assert fired, "overload burst must trip at least one SLO"
        assert "degraded-solves" in {a.name for a in fired}
        rows = [
            json.loads(line)
            for line in open(alerts, encoding="utf-8").read().splitlines()
        ]
        assert any(r["state"] == "fired" for r in rows)
        fired_sets.append([(a.name, a.sim_time, a.burn_long) for a in fired])
    assert fired_sets[0] == fired_sets[1]


# -------------------------------------------------------------- sweep rollup


def test_sweep_writes_fleet_series_rollup(tmp_path):
    import pytest

    from repro.experiments.configs import LabeledConfig
    from repro.experiments.pool import (
        SWEEP_SERIES_SCHEMA,
        SweepSpec,
        run_sweep,
    )

    configs = [
        LabeledConfig(
            label=label,
            factor_value=float(i),
            scheduler="mrcp-rm",
            config=_config(),
        )
        for i, label in enumerate(("a", "b"))
    ]
    spec = SweepSpec(
        name="tele",
        configs=configs,
        factor="arrival_rate",
        replications=1,
        root_seed=0,
        telemetry=True,
    )
    with pytest.raises(ValueError, match="out_dir"):
        run_sweep(spec)  # telemetry needs somewhere to put the series
    out_dir = str(tmp_path / "sweep")
    result = run_sweep(spec, out_dir=out_dir)
    assert all(o.status == "ok" for o in result.outcomes)
    lines = [
        json.loads(line)
        for line in open(
            f"{out_dir}/sweep.series.jsonl", encoding="utf-8"
        ).read().splitlines()
    ]
    assert lines[0] == {"schema": SWEEP_SERIES_SCHEMA, "cells": 2}
    for row in lines[1:]:
        assert row["series"] is not None
        final = row["series"]["final"]
        assert set(final) >= {"O", "N", "T", "P", "sim_time"}
        assert row["series"]["samples"] == row["series"]["total_samples"]
