"""Sweep engine across real worker processes: identity and crash isolation.

The determinism contract (docs/SWEEPS.md): ``run_sweep(spec, workers=N)``
must produce byte-identical merged artifacts for every N, and a worker that
raises -- or dies outright -- must fail only its own cell while the sweep
runs to completion.
"""

import json
import os

from repro.experiments.configs import LabeledConfig
from repro.experiments.pool import (
    SweepSpec,
    execute_cell,
    run_sweep,
)
from repro.experiments.runner import RunConfig, SystemConfig
from repro.workload import SyntheticWorkloadParams


def _config(arrival_rate=0.05):
    return RunConfig(
        scheduler="mrcp-rm",
        workload="synthetic",
        synthetic=SyntheticWorkloadParams(
            num_jobs=4,
            map_tasks_range=(1, 3),
            reduce_tasks_range=(1, 2),
            e_max=8,
            ar_probability=0.2,
            s_max=50,
            deadline_multiplier_max=3.0,
            arrival_rate=arrival_rate,
        ),
        system=SystemConfig(num_resources=2, map_slots=2, reduce_slots=2),
    )


def _spec(replications=2):
    return SweepSpec(
        name="integration",
        configs=[
            LabeledConfig("lo", 0.04, "mrcp-rm", _config(0.04)),
            LabeledConfig("hi", 0.08, "mrcp-rm", _config(0.08)),
        ],
        factor="arrival_rate",
        replications=replications,
        root_seed=9,
    )


# Pool runners must be module-level (picklable by reference).
def _raise_on_hi_rep0(job):
    if job.cell.label == "hi" and job.cell.replication == 0:
        raise RuntimeError("injected worker failure")
    return execute_cell(job)


def _die_on_hi_rep0(job):
    if job.cell.label == "hi" and job.cell.replication == 0:
        os._exit(13)  # hard death: breaks the whole process pool
    return execute_cell(job)


def test_parallel_output_byte_identical_to_sequential(tmp_path):
    spec = _spec()
    seq_dir, par_dir = tmp_path / "seq", tmp_path / "par"
    seq = run_sweep(spec, workers=1, out_dir=str(seq_dir))
    par = run_sweep(spec, workers=4, out_dir=str(par_dir))
    assert not seq.failed_cells and not par.failed_cells
    for name in ("sweep.json", "sweep.csv"):
        seq_bytes = (seq_dir / name).read_bytes()
        par_bytes = (par_dir / name).read_bytes()
        assert seq_bytes == par_bytes, f"{name} differs between worker counts"
    assert seq.to_json() == par.to_json()


def test_worker_raise_fails_only_its_cell():
    result = run_sweep(_spec(), workers=2, retries=1, runner=_raise_on_hi_rep0)
    assert len(result.outcomes) == 4
    (failed,) = result.failed_cells
    assert (failed.label, failed.replication) == ("hi", 0)
    assert failed.attempts == 2  # retries + 1
    assert "injected worker failure" in failed.error
    assert len(result.ok_cells) == 3


def test_worker_death_fails_only_its_cell():
    result = run_sweep(_spec(), workers=2, retries=1, runner=_die_on_hi_rep0)
    assert len(result.outcomes) == 4
    # Only the dying cell fails; innocent in-flight cells are re-run in
    # quarantine pools and complete.
    (failed,) = result.failed_cells
    assert (failed.label, failed.replication) == ("hi", 0)
    assert "died" in failed.error
    assert failed.attempts == 2  # retries + 1
    assert len(result.ok_cells) == 3


def test_failed_cells_present_in_artifacts(tmp_path):
    result = run_sweep(
        _spec(),
        workers=2,
        retries=0,
        runner=_raise_on_hi_rep0,
        out_dir=str(tmp_path),
    )
    doc = json.load(open(tmp_path / "sweep.json"))
    statuses = {(c["label"], c["replication"]): c["status"] for c in doc["cells"]}
    assert statuses[("hi", 0)] == "failed"
    assert sum(1 for s in statuses.values() if s == "ok") == len(result.ok_cells)
    csv_text = (tmp_path / "sweep.csv").read_text()
    assert "failed" in csv_text


def test_resume_completes_a_partially_failed_sweep(tmp_path):
    # First pass: one cell fails. Second pass with the default runner and
    # --resume semantics re-runs only that cell and succeeds.
    first = run_sweep(
        _spec(),
        workers=2,
        retries=0,
        runner=_raise_on_hi_rep0,
        out_dir=str(tmp_path),
    )
    assert len(first.failed_cells) == 1
    second = run_sweep(_spec(), workers=2, out_dir=str(tmp_path), resume=True)
    assert not second.failed_cells
    # The healed sweep equals a clean sequential run byte-for-byte.
    clean = run_sweep(_spec(), workers=1)
    assert second.to_csv() == clean.to_csv()
