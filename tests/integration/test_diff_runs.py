"""Differential observability, end to end.

The acceptance contract of the run-diff engine:

* a same-seed self-diff reports **zero** divergence (byte-level
  determinism surfaced as an explicit verdict);
* two runs differing only in an injected solver-budget change are
  localised to the **exact** first divergent scheduler invocation
  (index + simulated time), consistently by the offline plan diff and
  the checkpoint bisection;
* every per-job delta waterfall sums exactly to that job's tardiness
  delta in integer microseconds;
* the CLI exits 0 on identical, 1 on divergent, 2 on unreadable input.
"""

import json
import os

import pytest

from repro.cli import main
from repro.obs.diff import (
    DIFF_SCHEMA,
    bisect_divergence,
    capture_run_dir,
    default_diff_config,
    diff_runs,
    load_run_dir,
    write_diff_json,
)


@pytest.fixture(scope="module")
def run_dirs(tmp_path_factory):
    """Three captures: baseline, same-seed twin, budget-perturbed."""
    root = tmp_path_factory.mktemp("diff-runs")
    baseline = capture_run_dir(
        default_diff_config(), str(root / "baseline"), label="budget200"
    )
    twin = capture_run_dir(
        default_diff_config(), str(root / "twin"), label="twin"
    )
    perturbed = capture_run_dir(
        default_diff_config(fail_limit=1),
        str(root / "perturbed"),
        label="budget1",
    )
    return baseline, twin, perturbed


def test_capture_writes_the_full_artifact_set(run_dirs):
    baseline, _, _ = run_dirs
    for name in ("run.json", "trace.json", "trace.jsonl", "series.jsonl",
                 "forensics.json", "plans.json"):
        assert os.path.exists(os.path.join(baseline.path, name)), name
    assert baseline.run["schema"] == "repro-run/1"
    assert baseline.plans, "plan history must be captured"
    assert baseline.run["jobs"], "job SLAs must be captured"


def test_same_seed_self_diff_reports_zero_divergence(run_dirs):
    baseline, twin, _ = run_dirs
    diff = diff_runs(baseline, twin)
    assert diff.verdict == "identical"
    assert diff.alignment.identical
    assert diff.alignment.only_a == diff.alignment.only_b == 0
    assert diff.invocation is None
    assert diff.waterfalls == []
    assert diff.series["changed"] == {}
    assert all(e["delta"] in (0, 0.0, None) for e in diff.metrics.values())


def test_reloaded_run_dir_equals_its_in_memory_capture(run_dirs):
    baseline, _, _ = run_dirs
    assert diff_runs(load_run_dir(baseline.path), baseline).verdict == (
        "identical"
    )


def test_budget_change_localises_the_first_divergent_invocation(run_dirs):
    baseline, _, perturbed = run_dirs
    diff = diff_runs(baseline, perturbed)
    assert diff.verdict == "divergent"
    # The exact pin is part of the determinism contract for this pinned
    # scenario (seed 3, budget 200 vs 1): invocation 3, sim time 83.0s.
    assert diff.invocation is not None
    assert diff.invocation["index"] == 3
    assert diff.invocation["sim_time"] == 83.0
    # overhead jitter must not be what flagged it
    changed_paths = {c["path"] for c in diff.invocation["changed"]}
    assert "overhead" not in changed_paths
    # the event stream forks at (or before) the divergent invocation
    fd = diff.alignment.first_divergence
    assert fd is not None and fd["sim_time"] <= diff.invocation["sim_time"]


def test_bisection_agrees_with_the_offline_plan_diff(run_dirs):
    baseline, _, perturbed = run_dirs
    offline = diff_runs(baseline, perturbed)
    result = bisect_divergence(
        default_diff_config(),
        default_diff_config(fail_limit=1),
        every_events=20,
    )
    assert result.divergent
    assert result.checkpoint_index is not None
    assert result.state_changed, "bisection must name divergent state paths"
    assert result.invocation["index"] == offline.invocation["index"]
    assert result.invocation["sim_time"] == offline.invocation["sim_time"]
    doc = result.as_dict()
    assert doc["schema"] == DIFF_SCHEMA and doc["kind"] == "bisection"
    json.dumps(doc)  # machine-readable end to end


def test_bisection_of_identical_configs_is_clean():
    result = bisect_divergence(
        default_diff_config(), default_diff_config(), every_events=40
    )
    assert not result.divergent
    assert result.checkpoint_index is None and result.invocation is None
    assert result.checkpoints_compared > 0


def test_delta_waterfalls_sum_exactly_to_each_jobs_delta(run_dirs):
    baseline, _, perturbed = run_dirs
    diff = diff_runs(baseline, perturbed)
    assert diff.waterfalls, "the perturbation must move jobs"
    tard_a = {int(r["job_id"]): int(r["tardiness_us"])
              for r in baseline.attributions}
    tard_b = {int(r["job_id"]): int(r["tardiness_us"])
              for r in perturbed.attributions}
    for entry in diff.waterfalls:
        job = entry["job_id"]
        expected = tard_b.get(job, 0) - tard_a.get(job, 0)
        assert entry["delta_us"] == expected
        assert sum(entry["components_us"].values()) == entry["delta_us"]


def test_diff_json_document_round_trips(run_dirs, tmp_path):
    baseline, _, perturbed = run_dirs
    diff = diff_runs(baseline, perturbed)
    path = str(tmp_path / "diff.json")
    write_diff_json(path, diff.to_json_dict())
    doc = json.load(open(path, encoding="utf-8"))
    assert doc["schema"] == DIFF_SCHEMA
    assert doc["kind"] == "run" and doc["verdict"] == "divergent"
    assert doc["invocation"]["index"] == diff.invocation["index"]
    assert doc["a"]["label"] == "budget200" and doc["b"]["label"] == "budget1"


def test_html_diff_report_renders_the_divergence(run_dirs, tmp_path):
    from repro.obs.diffreport import write_diff_report

    baseline, twin, perturbed = run_dirs
    path = str(tmp_path / "diff.html")
    write_diff_report(path, diff_runs(baseline, perturbed))
    doc = open(path, encoding="utf-8").read()
    assert doc.startswith("<!DOCTYPE html>")
    assert "first divergent scheduler invocation" in doc
    assert "delta waterfall" in doc
    assert "<script" not in doc  # self-contained, no scripts
    # the self-diff report renders too, saying nothing diverged
    clean = str(tmp_path / "self.html")
    write_diff_report(clean, diff_runs(baseline, twin))
    assert "no divergence marker" in open(clean, encoding="utf-8").read()


def test_cli_exit_codes(run_dirs, tmp_path, capsys):
    baseline, twin, perturbed = run_dirs
    assert main(["diff", baseline.path, twin.path]) == 0
    assert "verdict: identical" in capsys.readouterr().out
    json_out = str(tmp_path / "cli-diff.json")
    assert main(["diff", baseline.path, perturbed.path,
                 "--json", json_out]) == 1
    out = capsys.readouterr().out
    assert "first divergent plan" in out
    assert json.load(open(json_out))["verdict"] == "divergent"
    assert main(["diff", baseline.path, str(tmp_path / "missing")]) == 2


def test_cli_sweep_diff(tmp_path, capsys):
    doc = {
        "schema": "repro-sweep/1",
        "sweep": {"name": "fig7"},
        "cells": [{"index": 0, "label": "c", "replication": 0, "seed": 0,
                   "status": "ok", "metrics": {"N": 1.0}, "counts": {}}],
        "summary": {},
    }
    pa, pb = tmp_path / "a.json", tmp_path / "b.json"
    pa.write_text(json.dumps(doc))
    doc["cells"][0]["metrics"]["N"] = 2.0
    pb.write_text(json.dumps(doc))
    assert main(["diff", str(pa), str(pa)]) == 0
    capsys.readouterr()
    assert main(["diff", str(pa), str(pb)]) == 1
    assert "metrics.N" in capsys.readouterr().out
