"""Property: attribution components sum exactly to measured tardiness.

For every late job, across seeded fault-injected and fault-free runs, the
four integer-microsecond components of the lateness attribution must be
nonnegative and sum *exactly* (no float tolerance) to the job's measured
tardiness, and every late job must receive exactly one attribution.
"""

import pytest

from repro.core import MrcpRm, MrcpRmConfig
from repro.cp.solver import SolverParams
from repro.faults import FaultModel
from repro.metrics import MetricsCollector
from repro.obs import ObsConfig
from repro.obs.conformance import validate_trace_events
from repro.obs.forensics import attribute_lateness
from repro.sim import RandomStreams, Simulator
from repro.workload import (
    SyntheticWorkloadParams,
    generate_synthetic_workload,
    make_uniform_cluster,
)

_US = 1_000_000


def _run(seed: int, with_faults: bool):
    """A deadline-tight traced run; returns everything forensics needs."""
    params = SyntheticWorkloadParams(
        num_jobs=10,
        map_tasks_range=(1, 6),
        reduce_tasks_range=(1, 3),
        e_max=10,
        ar_probability=0.5,
        s_max=200,
        deadline_multiplier_max=1.4,
        arrival_rate=0.05,
        total_map_slots=8,
        total_reduce_slots=8,
    )
    jobs = generate_synthetic_workload(params, streams=RandomStreams(seed))
    resources = make_uniform_cluster(4, 2, 2)
    sim = Simulator()
    metrics = MetricsCollector()
    tracer = ObsConfig(trace=True, plan_history=True).make_tracer()
    tracer.bind_sim_clock(lambda: sim.now)
    sim.attach_observability(tracer.registry)
    faults = None
    if with_faults:
        faults = FaultModel(
            task_failure_prob=0.2,
            straggler_prob=0.25,
            straggler_factor=2.5,
            outage_rate=0.003,
            outage_duration_range=(20.0, 60.0),
            outage_horizon=1500.0,
            seed=seed,
        )
    config = MrcpRmConfig(
        faults=faults,
        record_plan_history=True,
        solver=SolverParams(time_limit=0.3, tree_fail_limit=100, use_lns=False),
    )
    manager = MrcpRm(sim, resources, config, metrics, tracer=tracer)
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: manager.submit(j))
    sim.run()
    manager.executor.assert_quiescent()
    return metrics.finalize(), jobs, tracer.recorder.events, manager.plan_history


@pytest.mark.parametrize("seed", [0, 1, 7])
@pytest.mark.parametrize("with_faults", [False, True], ids=["clean", "faults"])
def test_components_sum_exactly_to_tardiness(seed, with_faults):
    result, jobs, events, plan_history = _run(seed, with_faults)
    attributions = attribute_lateness(
        result, jobs, events, plan_history=plan_history
    )
    # one attribution per late job, matching the collector's count
    assert len(attributions) == result.late_jobs
    assert {a.job_id for a in attributions} == set(result.tardiness_by_job)
    for a in attributions:
        parts = a.components_us
        assert all(v >= 0 for v in parts.values()), (a.job_id, parts)
        assert sum(parts.values()) == a.tardiness_us, (a.job_id, parts)
        # the exact-µs tardiness matches the collector's integer seconds
        assert a.tardiness_us == result.tardiness_by_job[a.job_id] * _US
        # raw measures are never negative either
        assert a.raw_contention >= 0
        assert a.raw_solver >= 0
        assert a.raw_fault >= 0


def test_faulted_run_attributes_fault_delay():
    """Fault injection shows up as nonzero fault components somewhere."""
    result, jobs, events, plan_history = _run(3, with_faults=True)
    assert validate_trace_events(events) == []
    attributions = attribute_lateness(
        result, jobs, events, plan_history=plan_history
    )
    if result.late_jobs and (
        result.failures_injected
        or result.stragglers_injected
        or result.tasks_killed
    ):
        assert any(a.raw_fault > 0 for a in attributions)


def test_plan_history_recorded_only_when_asked():
    """The plan-history hook is opt-in; the default config keeps none."""
    params = SyntheticWorkloadParams(
        num_jobs=3, total_map_slots=8, total_reduce_slots=8
    )
    jobs = generate_synthetic_workload(params, streams=RandomStreams(0))
    resources = make_uniform_cluster(2, 2, 2)
    sim = Simulator()
    manager = MrcpRm(
        sim,
        resources,
        MrcpRmConfig(
            solver=SolverParams(time_limit=0.3, tree_fail_limit=100,
                                use_lns=False)
        ),
        MetricsCollector(),
    )
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: manager.submit(j))
    sim.run()
    assert manager.plan_history == []
