"""Observability must never change results: traced == untraced, bit for bit."""

import json

from repro import quick_demo
from repro.experiments.runner import RunConfig, SystemConfig, run_once
from repro.obs import ObsConfig
from repro.obs.trace import TraceRecorder, Tracer
from repro.workload import SyntheticWorkloadParams

SEED = 7


def _clock():
    """A constant wall clock (pins measured overhead O to exactly 0)."""
    return 0.0


def _demo_pair(seed=SEED):
    """Same-seed quick_demo metrics with tracing off and on."""
    untraced = quick_demo(seed=seed, tracer=Tracer(None, wall_clock=_clock))
    tracer = Tracer(TraceRecorder(), wall_clock=_clock)
    traced = quick_demo(seed=seed, tracer=tracer)
    return untraced, traced, tracer


#: Verbose keys that are genuine wall-clock measurements -- everything else
#: in the verbose dict must be bit-identical between traced and untraced runs.
_WALL_TIME_KEYS = frozenset(
    {
        "solver_propagate_time",
        "solver_warm_start_time",
        "solver_tree_time",
        "solver_lns_time",
    }
)


def test_tracing_does_not_change_any_metric():
    untraced, traced, _ = _demo_pair()
    assert untraced.as_dict() == traced.as_dict()
    v0 = untraced.as_dict(verbose=True)
    v1 = traced.as_dict(verbose=True)
    assert v0.keys() == v1.keys()
    for key in v0.keys() - _WALL_TIME_KEYS:
        assert v0[key] == v1[key], key
    assert untraced.turnarounds == traced.turnarounds
    assert untraced.late_job_ids == traced.late_job_ids


def test_happy_path_dict_stays_exactly_ontp():
    untraced, _, _ = _demo_pair()
    assert set(untraced.as_dict()) == {"O", "N", "T", "P"}
    verbose = untraced.as_dict(verbose=True)
    assert set(verbose) > {"O", "N", "T", "P"}
    assert {
        "solver_branches",
        "solver_fails",
        "solver_lns_iterations",
        "solver_propagations",
        "solver_propagate_time",
        "solver_warm_start_time",
        "solver_tree_time",
        "solver_lns_time",
    } <= set(verbose)


def test_one_span_per_scheduler_invocation():
    _, traced, tracer = _demo_pair()
    names = [e["name"] for e in tracer.recorder.events]
    assert names.count("scheduler.invocation") == traced.scheduler_invocations
    # every task execution shows up on the sim timeline
    task_spans = [
        e for e in tracer.recorder.events if e.get("cat") == "task"
    ]
    assert len(task_spans) > 0


def _tiny_config(trace_out, clock):
    return RunConfig(
        workload="synthetic",
        synthetic=SyntheticWorkloadParams(
            num_jobs=5,
            map_tasks_range=(1, 4),
            reduce_tasks_range=(1, 2),
            e_max=8,
            ar_probability=0.3,
            s_max=150,
            deadline_multiplier_max=3.0,
            arrival_rate=0.05,
        ),
        system=SystemConfig(num_resources=3),
        obs=ObsConfig(trace_out=trace_out, wall_clock=clock),
        seed=SEED,
    )


def test_run_once_writes_valid_trace_files(tmp_path):
    out = str(tmp_path / "trace.json")
    metrics = run_once(_tiny_config(out, _clock))
    with open(out, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    assert events
    names = [e["name"] for e in events]
    assert names.count("scheduler.invocation") == metrics.scheduler_invocations
    # the registry snapshot rides along and agrees with the run metrics
    snapshot = doc["otherData"]["metrics"]
    assert snapshot["scheduler.invocations"] == metrics.scheduler_invocations
    # the JSONL event log lands alongside
    jsonl = tmp_path / "trace.jsonl"
    lines = [json.loads(l) for l in jsonl.read_text().splitlines() if l]
    assert lines[-1]["name"] == "metrics.snapshot"
    spans = [e for e in events if e["ph"] != "M"]  # metadata is chrome-only
    assert len(lines) == len(spans) + 1


def test_run_once_traced_equals_untraced(tmp_path):
    out = str(tmp_path / "trace.json")
    untraced = run_once(_tiny_config(None, _clock))
    traced = run_once(_tiny_config(out, _clock))
    assert untraced.as_dict() == traced.as_dict()
    assert untraced.as_dict().keys() == {"O", "N", "T", "P"}
