"""Property-based end-to-end tests: the whole stack on random workloads.

The executor asserts its own invariants (slot exclusivity, no stale events,
quiescence), the resource manager validates every installed schedule, and
the CP solver validates every solution -- so simply *running* a random
workload to completion exercises hundreds of internal checks.  These
properties add the external ones: completion, lateness accounting,
determinism, and DAG safety.
"""

from hypothesis import given, settings, strategies as st

from repro.core import MrcpRm, MrcpRmConfig
from repro.cp.solver import SolverParams
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload import (
    SyntheticWorkloadParams,
    WorkflowWorkloadParams,
    generate_synthetic_workload,
    generate_workflow_workload,
    make_uniform_cluster,
)


def _drive(jobs, resources):
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim,
        resources,
        MrcpRmConfig(solver=SolverParams(time_limit=0.05, tree_fail_limit=50)),
        metrics,
    )
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: rm.submit(j))
    sim.run()
    rm.executor.assert_quiescent()
    return metrics.finalize()


@st.composite
def small_workloads(draw):
    return (
        SyntheticWorkloadParams(
            num_jobs=draw(st.integers(1, 6)),
            map_tasks_range=(1, draw(st.integers(1, 4))),
            reduce_tasks_range=(0, draw(st.integers(0, 3))),
            e_max=draw(st.integers(1, 10)),
            ar_probability=draw(st.sampled_from([0.0, 0.5, 1.0])),
            s_max=draw(st.integers(1, 100)),
            deadline_multiplier_max=draw(st.sampled_from([1.0, 2.0, 5.0])),
            arrival_rate=draw(st.sampled_from([0.05, 0.5])),
            total_map_slots=4,
            total_reduce_slots=4,
        ),
        draw(st.integers(0, 10_000)),
    )


@given(small_workloads())
@settings(max_examples=25, deadline=None)
def test_every_random_workload_completes(spec):
    params, seed = spec
    jobs = generate_synthetic_workload(params, seed=seed)
    resources = make_uniform_cluster(2, 2, 2)
    metrics = _drive(jobs, resources)
    assert metrics.jobs_completed == metrics.jobs_arrived == params.num_jobs
    assert 0 <= metrics.late_jobs <= params.num_jobs
    # lateness accounting is consistent with the recorded turnarounds
    for job in jobs:
        completion = job.earliest_start + metrics.turnarounds[job.id]
        is_late = completion > job.deadline
        assert (job.id in metrics.late_job_ids) == is_late


@given(small_workloads())
@settings(max_examples=10, deadline=None)
def test_runs_are_deterministic(spec):
    params, seed = spec
    a = _drive(generate_synthetic_workload(params, seed=seed),
               make_uniform_cluster(2, 2, 2))
    b = _drive(generate_synthetic_workload(params, seed=seed),
               make_uniform_cluster(2, 2, 2))
    assert a.turnarounds == b.turnarounds
    assert a.late_job_ids == b.late_job_ids


@given(st.integers(0, 10_000), st.integers(1, 5))
@settings(max_examples=15, deadline=None)
def test_random_dag_workflows_complete(seed, num_jobs):
    params = WorkflowWorkloadParams(
        num_jobs=num_jobs,
        stages_range=(2, 4),
        tasks_per_stage_range=(1, 3),
        e_max=8,
        arrival_rate=0.1,
        total_map_slots=4,
        total_reduce_slots=4,
    )
    wfs = generate_workflow_workload(params, seed=seed)
    metrics = _drive(wfs, make_uniform_cluster(2, 2, 2))
    assert metrics.jobs_completed == num_jobs
