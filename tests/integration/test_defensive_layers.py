"""Defensive layers: every internal safety net actually fires.

The stack has four independent safety nets -- the CP solution checker, the
schedule validator inside MRCP-RM, the executor's slot-occupancy asserts,
and the metrics collector's double-event guards.  These tests corrupt one
component at a time and assert the right net catches it (rather than the
corruption propagating into silently-wrong results).

Runtime fault *injection* (task failures, stragglers, outages) lives in
``tests/integration/test_fault_injection.py``; this module is about
catching internal bugs, not simulating external failures.
"""

import pytest

from repro.core import MrcpRm, MrcpRmConfig
from repro.core.executor import ScheduledExecutor
from repro.core.schedule import SchedulingError, TaskAssignment
from repro.cp.solver import CpSolver, SolverParams
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload import make_uniform_cluster
from repro.workload.entities import Resource

from tests.conftest import make_job, two_job_single_machine_model


def _rm(resources=None, **cfg_kw):
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim,
        resources or make_uniform_cluster(2, 2, 2),
        MrcpRmConfig(solver=SolverParams(time_limit=0.2), **cfg_kw),
        metrics,
    )
    return sim, metrics, rm


def test_corrupted_matchmaking_caught_by_validator():
    """A decomposition that drops every task onto slot 0 of resource 0 must
    be rejected before it reaches the executor."""
    import repro.core.invocation as M

    sim, metrics, rm = _rm()

    def broken_decompose(movable, frozen, resources):
        return list(frozen) + [
            TaskAssignment(task, 0, 0, start) for task, start in movable
        ]

    original = M.decompose_combined_schedule
    M.decompose_combined_schedule = broken_decompose
    try:
        job = make_job(0, (5, 5), deadline=100)  # two parallel maps
        sim.schedule_at(0, lambda: rm.submit(job))
        with pytest.raises(SchedulingError, match="invalid schedule"):
            sim.run()
    finally:
        M.decompose_combined_schedule = original


@pytest.mark.slow
def test_corrupted_solver_solution_caught_by_cp_checker():
    """A solver whose 'solution' overlaps tasks trips the CP-level
    assertion before MRCP-RM ever sees it."""
    from repro.cp import heuristics as H

    m = two_job_single_machine_model()

    def overlapping_schedule(model, order="edf", preplaced=None):
        from repro.cp.solution import Solution

        sol = Solution(starts={iv: 0 for iv in model.intervals})
        sol.objective = 0  # a lie on two counts
        return sol

    original = H.list_schedule
    # Patch the solver's imported reference.
    import repro.cp.solver as S

    orig_best = S.best_warm_start
    S.best_warm_start = lambda model, orders: overlapping_schedule(model)
    try:
        # validate=True (default) discards the corrupt warm start and the
        # search still produces a correct answer
        result = CpSolver().solve(m, time_limit=2.0)
        assert result.objective == 1
        from repro.cp.checker import check_solution

        assert check_solution(m, result.solution) == []
    finally:
        S.best_warm_start = orig_best
        H.list_schedule = original


def test_executor_catches_overlapping_manual_install():
    sim = Simulator()
    ex = ScheduledExecutor(sim, [Resource(0, 1, 1)])
    job = make_job(0, (5, 5))
    ex.register_job(job)
    ex.install([
        TaskAssignment(job.map_tasks[0], 0, 0, 0),
        TaskAssignment(job.map_tasks[1], 0, 0, 2),
    ])
    with pytest.raises(SchedulingError, match="double-booked"):
        sim.run()


class _DeadSolver:
    """A solver stub that never finds a solution."""

    def solve(self, model, hint=None, **kw):
        from repro.cp.solution import SolveResult, SolveStatus, SearchStats

        return SolveResult(SolveStatus.UNKNOWN, None, SearchStats())


def test_solver_failure_surfaces_as_scheduling_error():
    """With graceful degradation disabled, a no-solution solve raises
    (Table 2 line 24) instead of dropping the job on the floor."""
    sim, metrics, rm = _rm(fallback_to_heuristic=False)
    rm._solver = _DeadSolver()
    sim.schedule_at(0, lambda: rm.submit(make_job(0, (5,), deadline=50)))
    with pytest.raises(SchedulingError, match="unknown"):
        sim.run()


def test_solver_failure_degrades_to_heuristic_by_default():
    """The default config survives a dead solver: the EDF list schedule
    takes over and the degradation is visible in ``fallback_solves``."""
    sim, metrics, rm = _rm()
    rm._solver = _DeadSolver()
    sim.schedule_at(0, lambda: rm.submit(make_job(0, (5,), deadline=50)))
    sim.run()
    rm.executor.assert_quiescent()
    result = metrics.finalize()
    assert result.jobs_completed == 1
    assert result.fallback_solves > 0
    assert "fallback_solves" in result.as_dict()


def test_metrics_double_completion_guard():
    metrics = MetricsCollector()
    job = make_job(0, (5,))
    metrics.job_arrived(job)
    metrics.job_completed(job, 10)
    with pytest.raises(ValueError, match="completed twice"):
        metrics.job_completed(job, 11)


def test_resubmitting_a_job_is_rejected():
    sim, metrics, rm = _rm()
    job = make_job(0, (5,), deadline=100)
    sim.schedule_at(0, lambda: rm.submit(job))
    sim.schedule_at(1, lambda: rm.submit(job))
    with pytest.raises(ValueError, match="arrived twice"):
        sim.run()


def test_workload_with_impossible_frozen_state_is_infeasible():
    """Frozen tasks overlapping beyond capacity: the CP root propagation
    proves infeasibility and the solver reports it (no silent repair)."""
    from repro.core.formulation import build_model

    job = make_job(0, (10, 10), deadline=100)
    running = [
        TaskAssignment(job.map_tasks[0], 0, 0, start=0),
        TaskAssignment(job.map_tasks[1], 0, 0, start=5),  # same slot overlap
    ]
    result = build_model([job], [Resource(0, 1, 1)], now=6, running=running)
    solve = CpSolver().solve(result.model, time_limit=1.0)
    assert not solve.status.has_solution
