"""Cross-scheduler invariants on identical workloads (property-based).

Whatever the policy, certain facts must hold for every scheduler on the
same stream: all jobs complete; completion never precedes the earliest
start plus the critical path; turnaround bookkeeping is internally
consistent; and MRCP-RM's plan-driven executor and the baselines'
slot-pull cluster agree on *which* jobs exist.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments.runner import RunConfig, SystemConfig, run_once
from repro.workload import SyntheticWorkloadParams


@st.composite
def stream_specs(draw):
    return (
        SyntheticWorkloadParams(
            num_jobs=draw(st.integers(2, 6)),
            map_tasks_range=(1, draw(st.integers(1, 4))),
            reduce_tasks_range=(1, draw(st.integers(1, 2))),
            e_max=draw(st.integers(2, 10)),
            ar_probability=0.0,
            deadline_multiplier_max=draw(st.sampled_from([1.5, 3.0])),
            arrival_rate=draw(st.sampled_from([0.05, 0.3])),
        ),
        draw(st.integers(0, 500)),
    )


@given(stream_specs())
@settings(max_examples=12, deadline=None)
def test_all_schedulers_satisfy_common_invariants(spec):
    params, seed = spec
    system = SystemConfig(num_resources=2, map_slots=2, reduce_slots=2)
    outcomes = {}
    for scheduler in ("mrcp-rm", "minedf-wc", "edf", "fcfs"):
        cfg = RunConfig(
            scheduler=scheduler,
            workload="synthetic",
            synthetic=params,
            system=system,
            seed=seed,
        )
        cfg.mrcp.solver.time_limit = 0.05
        metrics = run_once(cfg, replication=0)
        outcomes[scheduler] = metrics

        assert metrics.jobs_completed == params.num_jobs
        assert set(metrics.turnarounds) == set(range(params.num_jobs))
        assert all(t >= 1 for t in metrics.turnarounds.values())
        assert 0 <= metrics.late_jobs <= params.num_jobs

    # same workload => same job count everywhere; physics lower bound:
    # no scheduler beats the per-phase work/critical-task bound.  (The LPT
    # makespan used for TE is *not* a lower bound -- LPT can overshoot the
    # optimum -- so we bound each phase by max(longest task, work/slots).)
    import math

    from repro.experiments.runner import _generate_jobs

    jobs = _generate_jobs(
        RunConfig(
            scheduler="fcfs", workload="synthetic",
            synthetic=params, system=system, seed=seed,
        ),
        seed=seed * 10_007,
    )

    def phase_lb(durations, slots):
        if not durations:
            return 0
        return max(max(durations), math.ceil(sum(durations) / slots))

    for scheduler, metrics in outcomes.items():
        for job in jobs:
            lb = phase_lb(
                [t.duration for t in job.map_tasks], system.total_map_slots
            ) + phase_lb(
                [t.duration for t in job.reduce_tasks],
                system.total_reduce_slots,
            )
            assert metrics.turnarounds[job.id] >= lb, (
                f"{scheduler} finished job {job.id} faster than physics "
                f"({metrics.turnarounds[job.id]} < {lb})"
            )
