"""Simulation kernel: ordering, cancellation, priorities, processes."""

import pytest

from repro.sim.kernel import (
    PRIORITY_ACQUIRE,
    PRIORITY_DEFAULT,
    PRIORITY_RELEASE,
    Simulator,
)


def test_events_fire_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(5, lambda: log.append("b"))
    sim.schedule(2, lambda: log.append("a"))
    sim.schedule(9, lambda: log.append("c"))
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 9


def test_same_time_fifo_within_priority():
    sim = Simulator()
    log = []
    for tag in "abc":
        sim.schedule(3, lambda t=tag: log.append(t))
    sim.run()
    assert log == ["a", "b", "c"]


def test_priority_classes_order_same_timestamp():
    sim = Simulator()
    log = []
    sim.schedule(1, lambda: log.append("acquire"), PRIORITY_ACQUIRE)
    sim.schedule(1, lambda: log.append("default"), PRIORITY_DEFAULT)
    sim.schedule(1, lambda: log.append("release"), PRIORITY_RELEASE)
    sim.run()
    assert log == ["release", "default", "acquire"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    log = []
    handle = sim.schedule(3, lambda: log.append("no"))
    sim.schedule(1, lambda: handle.cancel())
    sim.run()
    assert log == []


def test_run_until_pauses_clock():
    sim = Simulator()
    log = []
    sim.schedule(5, lambda: log.append("early"))
    sim.schedule(15, lambda: log.append("late"))
    assert sim.run(until=10) == 10
    assert log == ["early"]
    sim.run()
    assert log == ["early", "late"]


def test_run_until_includes_boundary():
    sim = Simulator()
    log = []
    sim.schedule(10, lambda: log.append("x"))
    sim.run(until=10)
    assert log == ["x"]


def test_stop_halts_run():
    sim = Simulator()
    log = []
    sim.schedule(1, lambda: log.append("a"))
    sim.schedule(2, sim.stop)
    sim.schedule(3, lambda: log.append("b"))
    sim.run()
    assert log == ["a"]
    sim.run()
    assert log == ["a", "b"]


def test_events_scheduled_during_run():
    sim = Simulator()
    log = []

    def chain(n):
        log.append(n)
        if n < 3:
            sim.schedule(1, lambda: chain(n + 1))

    sim.schedule(0, lambda: chain(0))
    sim.run()
    assert log == [0, 1, 2, 3]
    assert sim.now == 3


def test_step_and_peek():
    sim = Simulator()
    sim.schedule(4, lambda: None)
    sim.schedule(7, lambda: None)
    assert sim.peek() == 4
    assert sim.step()
    assert sim.peek() == 7
    assert sim.step()
    assert not sim.step()


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    h1 = sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    h1.cancel()
    assert sim.pending == 1


def test_process_coroutine():
    sim = Simulator()
    log = []

    def worker():
        log.append(("start", sim.now))
        yield sim.timeout(5)
        log.append(("mid", sim.now))
        yield sim.timeout(3)
        log.append(("end", sim.now))
        return 42

    proc = sim.process(worker())
    sim.run()
    assert log == [("start", 0), ("mid", 5), ("end", 8)]
    assert proc.triggered and proc.value == 42


def test_process_waits_on_event():
    sim = Simulator()
    log = []
    gate = None

    def opener():
        yield sim.timeout(10)
        gate.succeed("opened")

    def waiter():
        value = yield gate
        log.append((value, sim.now))

    gate = sim.event()
    sim.process(opener())
    sim.process(waiter())
    sim.run()
    assert log == [("opened", 10)]


def test_process_must_yield_events():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_callback_on_already_triggered_event_fires_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    log = []
    ev.add_callback(lambda e: log.append(e.value))
    assert log == ["v"]


def test_run_until_skips_cancelled_head():
    """A cancelled event beyond ``until`` must not pause the loop early:
    the head is purged first (mirrors peek()), so a live later event still
    decides the exit time."""
    sim = Simulator()
    log = []
    h = sim.schedule_at(5, lambda: log.append("cancelled"))
    sim.schedule_at(8, lambda: log.append("live"))
    h.cancel()
    assert sim.run(until=6) == 6
    assert log == []
    assert sim.run(until=10) == 10
    assert log == ["live"]


def test_run_until_with_only_cancelled_events_advances_clock():
    sim = Simulator()
    h1 = sim.schedule_at(3, lambda: None)
    h2 = sim.schedule_at(7, lambda: None)
    h1.cancel()
    h2.cancel()
    assert sim.run(until=5) == 5
    assert sim.pending == 0


def test_peek_after_cancel_matches_run_behaviour():
    """peek() and run(until=...) must agree on which event is next."""
    sim = Simulator()
    log = []
    h = sim.schedule_at(2, lambda: log.append("a"))
    sim.schedule_at(4, lambda: log.append("b"))
    h.cancel()
    assert sim.peek() == 4
    sim.run(until=sim.peek())
    assert log == ["b"]
    assert sim.peek() is None


def test_cancel_between_run_segments():
    sim = Simulator()
    log = []
    sim.schedule_at(1, lambda: log.append(1))
    later = sim.schedule_at(10, lambda: log.append(10))
    sim.run(until=5)
    later.cancel()
    sim.run()
    assert log == [1]
    assert sim.now == 5  # nothing live remained; clock stays put
