"""Replication statistics."""

import math

import pytest

from repro.sim.stats import (
    RunningStats,
    batch_means,
    mean_ci,
    relative_half_width,
    run_replications,
    trim_warmup,
)


def test_running_stats_matches_formulas():
    data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    rs = RunningStats()
    for x in data:
        rs.add(x)
    mean = sum(data) / len(data)
    var = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
    assert rs.n == len(data)
    assert rs.mean == pytest.approx(mean)
    assert rs.variance == pytest.approx(var)
    assert rs.std == pytest.approx(math.sqrt(var))


def test_running_stats_degenerate():
    rs = RunningStats()
    assert rs.variance == 0.0
    rs.add(5.0)
    assert rs.mean == 5.0 and rs.variance == 0.0


def test_mean_ci_known_values():
    # t(0.975, df=3) = 3.1824 ; data mean 5, sample std 2.5820
    data = [2.0, 4.0, 6.0, 8.0]
    mean, hw = mean_ci(data, 0.95)
    assert mean == 5.0
    se = math.sqrt(sum((x - 5) ** 2 for x in data) / 3 / 4)
    assert hw == pytest.approx(3.1824 * se, rel=1e-3)


def test_mean_ci_single_sample_infinite():
    mean, hw = mean_ci([3.0])
    assert mean == 3.0 and hw == float("inf")


def test_mean_ci_empty_rejected():
    with pytest.raises(ValueError):
        mean_ci([])


def test_relative_half_width():
    assert relative_half_width([5.0, 5.0, 5.0]) == 0.0
    assert relative_half_width([0.0, 0.0, 1e-13]) in (0.0, float("inf"))


def test_run_replications_stops_when_converged():
    # constant metric: converges at min_replications
    result = run_replications(
        lambda rep: {"T": 100.0},
        targets={"T": 0.01},
        min_replications=3,
        max_replications=20,
    )
    assert result.converged
    assert result.replications == 3


def test_run_replications_hits_max_when_noisy():
    values = iter([1.0, 100.0, 1.0, 100.0, 1.0, 100.0])
    result = run_replications(
        lambda rep: {"T": next(values)},
        targets={"T": 0.001},
        min_replications=2,
        max_replications=6,
    )
    assert not result.converged
    assert result.replications == 6


def test_run_replications_zero_mean_metric_continues():
    # P = 0 everywhere: half-width 0 -> converged despite zero mean
    result = run_replications(
        lambda rep: {"P": 0.0},
        targets={"P": 0.05},
        min_replications=3,
        max_replications=10,
    )
    assert result.converged


def test_run_replications_collects_all_metrics():
    result = run_replications(
        lambda rep: {"T": float(rep), "P": 1.0},
        targets={},
        min_replications=2,
        max_replications=5,
    )
    assert result.samples["T"] == [0.0, 1.0]
    assert result.mean("P") == 1.0


def test_run_replications_argument_validation():
    with pytest.raises(ValueError):
        run_replications(lambda rep: {}, min_replications=0)
    with pytest.raises(ValueError):
        run_replications(lambda rep: {}, min_replications=5, max_replications=2)


def test_trim_warmup():
    assert trim_warmup([1, 2, 3, 4, 5], 0.4) == [3, 4, 5]
    assert trim_warmup([1, 2], 0.0) == [1, 2]
    with pytest.raises(ValueError):
        trim_warmup([1], 1.0)


def test_batch_means():
    data = list(range(10))
    assert batch_means(data, 5) == [0.5, 2.5, 4.5, 6.5, 8.5]
    with pytest.raises(ValueError):
        batch_means([1], 2)
