"""Random streams: reproducibility, independence, distribution sanity."""

import math

import pytest

from repro.sim.rng import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(42).distributions("x")
    b = RandomStreams(42).distributions("x")
    assert [a.du(0, 100) for _ in range(20)] == [b.du(0, 100) for _ in range(20)]


def test_different_names_differ():
    s = RandomStreams(42)
    a = [s.distributions("a").du(0, 10 ** 6) for _ in range(5)]
    b = [s.distributions("b").du(0, 10 ** 6) for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RandomStreams(1).distributions("x")
    b = RandomStreams(2).distributions("x")
    assert [a.du(0, 10 ** 6) for _ in range(5)] != [
        b.du(0, 10 ** 6) for _ in range(5)
    ]


def test_generator_cached_per_name():
    s = RandomStreams(0)
    assert s.generator("x") is s.generator("x")


def test_spawn_derives_independent_registries():
    base = RandomStreams(7)
    r1 = base.spawn(0).distributions("x")
    r2 = base.spawn(1).distributions("x")
    assert [r1.du(0, 10 ** 6) for _ in range(5)] != [
        r2.du(0, 10 ** 6) for _ in range(5)
    ]


def test_du_bounds_inclusive():
    d = RandomStreams(3).distributions("x")
    values = {d.du(2, 4) for _ in range(300)}
    assert values == {2, 3, 4}


def test_du_empty_range_rejected():
    d = RandomStreams(0).distributions("x")
    with pytest.raises(ValueError):
        d.du(5, 4)


def test_uniform_bounds():
    d = RandomStreams(1).distributions("x")
    for _ in range(100):
        v = d.uniform(1.0, 2.0)
        assert 1.0 <= v <= 2.0


def test_bernoulli_extremes():
    d = RandomStreams(1).distributions("x")
    assert all(not d.bernoulli(0.0) for _ in range(50))
    assert all(d.bernoulli(1.0) for _ in range(50))
    with pytest.raises(ValueError):
        d.bernoulli(1.5)


def test_exponential_rate_mean():
    d = RandomStreams(5).distributions("x")
    n = 4000
    mean = sum(d.exponential_rate(0.01) for _ in range(n)) / n
    assert mean == pytest.approx(100.0, rel=0.1)
    with pytest.raises(ValueError):
        d.exponential_rate(0.0)


def test_lognormal_parameterised_by_variance():
    # LN(mu, sigma^2): mean = exp(mu + sigma^2/2).  Facebook map times.
    mu, var = 9.9511, 1.6764
    d = RandomStreams(11).distributions("x")
    n = 20000
    mean = sum(d.lognormal(mu, var) for _ in range(n)) / n
    expected = math.exp(mu + var / 2.0)
    assert mean == pytest.approx(expected, rel=0.15)
    with pytest.raises(ValueError):
        d.lognormal(1.0, -0.1)


def test_weighted_choice_distribution():
    d = RandomStreams(2).distributions("x")
    items = ["a", "b"]
    counts = {"a": 0, "b": 0}
    for _ in range(2000):
        counts[d.choice(items, [9, 1])] += 1
    assert counts["a"] > counts["b"] * 4


def test_choice_argument_validation():
    d = RandomStreams(0).distributions("x")
    with pytest.raises(ValueError):
        d.choice(["a"], [1, 2])
    with pytest.raises(ValueError):
        d.choice(["a", "b"], [0, 0])
