"""Workload validation catches each malformation."""

from repro.workload.entities import Job, Task, TaskKind
from repro.workload.validate import validate_jobs

from tests.conftest import make_job, make_task


def test_valid_workload_passes():
    jobs = [make_job(0, (5,), (3,)), make_job(1, (2,), arrival=10, earliest_start=10, deadline=50)]
    assert validate_jobs(jobs) == []


def test_duplicate_job_ids():
    jobs = [make_job(0), make_job(0)]
    problems = validate_jobs(jobs)
    assert any("duplicate job id" in p for p in problems)


def test_duplicate_task_ids():
    a = make_job(0)
    b = make_job(1)
    b.map_tasks[0].id = a.map_tasks[0].id
    assert any("duplicate task id" in p for p in validate_jobs([a, b]))


def test_earliest_start_before_arrival():
    j = make_job(0, arrival=10, earliest_start=5)
    assert any("before" in p for p in validate_jobs([j]))


def test_deadline_not_after_start():
    j = make_job(0, earliest_start=10, deadline=10)
    assert any("deadline" in p for p in validate_jobs([j]))


def test_empty_job():
    j = Job(id=0, arrival_time=0, earliest_start=0, deadline=10)
    assert any("no tasks" in p for p in validate_jobs([j]))


def test_reduces_without_maps():
    j = Job(
        id=0,
        arrival_time=0,
        earliest_start=0,
        deadline=10,
        reduce_tasks=[make_task("r0", 0, TaskKind.REDUCE, 3)],
    )
    assert any("reduces without maps" in p for p in validate_jobs([j]))


def test_wrong_parent_id():
    j = make_job(0)
    j.map_tasks[0].job_id = 99
    assert any("job_id" in p for p in validate_jobs([j]))


def test_nonpositive_duration_and_demand():
    j = make_job(0)
    j.map_tasks[0].duration = 0
    j.map_tasks[0].demand = 0
    problems = validate_jobs([j])
    assert any("duration" in p for p in problems)
    assert any("demand" in p for p in problems)


def test_kind_list_mismatch():
    j = make_job(0)
    j.map_tasks[0].kind = TaskKind.REDUCE
    assert any("kind" in p for p in validate_jobs([j]))


def test_unsorted_arrivals():
    jobs = [make_job(0, arrival=10, earliest_start=10, deadline=100),
            make_job(1, arrival=5, earliest_start=5, deadline=100)]
    assert any("sorted" in p for p in validate_jobs(jobs))
