"""DAG workflow entities and generator (the Section VII generalisation)."""

import pytest

from repro.workload.entities import Task, TaskKind
from repro.workload.workflows import (
    Stage,
    WorkflowJob,
    WorkflowWorkloadParams,
    from_mapreduce,
    generate_workflow_workload,
    validate_workflows,
)

from tests.conftest import make_job


def _task(tid, job_id=0, kind=TaskKind.MAP, duration=5):
    return Task(tid, job_id, kind, duration)


def _diamond(job_id=0, deadline=1000):
    """A -> {B, C} -> D."""
    return WorkflowJob(
        id=job_id,
        arrival_time=0,
        earliest_start=0,
        deadline=deadline,
        stages=[
            Stage("A", [_task(f"w{job_id}_a0", job_id)]),
            Stage("B", [_task(f"w{job_id}_b0", job_id), _task(f"w{job_id}_b1", job_id)]),
            Stage("C", [_task(f"w{job_id}_c0", job_id, TaskKind.REDUCE)]),
            Stage("D", [_task(f"w{job_id}_d0", job_id)]),
        ],
        edges=[("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
    )


def test_valid_diamond():
    wf = _diamond()
    assert len(wf.tasks) == 5
    assert wf.terminal_stage_names() == ["D"]
    stages, preds = wf.topological_stages()
    names = [s.name for s in stages]
    assert names[0] == "A" and names[-1] == "D"
    d_idx = names.index("D")
    assert sorted(names[p] for p in preds[d_idx]) == ["B", "C"]


def test_cycle_rejected():
    with pytest.raises(ValueError, match="cycle"):
        WorkflowJob(
            id=1, arrival_time=0, earliest_start=0, deadline=10,
            stages=[Stage("A", [_task("a", 1)]), Stage("B", [_task("b", 1)])],
            edges=[("A", "B"), ("B", "A")],
        )


def test_unknown_stage_edge_rejected():
    with pytest.raises(ValueError, match="unknown stage"):
        WorkflowJob(
            id=1, arrival_time=0, earliest_start=0, deadline=10,
            stages=[Stage("A", [_task("a", 1)])],
            edges=[("A", "Z")],
        )


def test_self_edge_rejected():
    with pytest.raises(ValueError, match="self-edge"):
        WorkflowJob(
            id=1, arrival_time=0, earliest_start=0, deadline=10,
            stages=[Stage("A", [_task("a", 1)])],
            edges=[("A", "A")],
        )


def test_empty_stage_rejected():
    with pytest.raises(ValueError, match="no tasks"):
        WorkflowJob(
            id=1, arrival_time=0, earliest_start=0, deadline=10,
            stages=[Stage("A", [])], edges=[],
        )


def test_duplicate_stage_names_rejected():
    with pytest.raises(ValueError, match="duplicate stage"):
        WorkflowJob(
            id=1, arrival_time=0, earliest_start=0, deadline=10,
            stages=[Stage("A", [_task("a", 1)]), Stage("A", [_task("b", 1)])],
            edges=[],
        )


def test_job_compatible_interface():
    wf = _diamond()
    assert not wf.is_completed
    assert len(wf.pending_tasks) == 5
    assert wf.total_work == 25
    assert wf.laxity() == 1000 - 0 - 25
    assert [t.id for t in wf.last_stage_tasks] == ["w0_d0"]
    for t in wf.tasks:
        t.is_completed = True
    assert wf.is_completed
    wf.reset_runtime_state()
    assert not wf.is_completed


def test_with_earliest_start_view():
    wf = _diamond()
    view = wf.with_earliest_start(50)
    assert view.earliest_start == 50
    assert wf.earliest_start == 0
    assert view.stages is wf.stages
    assert wf.with_earliest_start(0) is wf


def test_critical_path_time_chain():
    # A(4) -> B(6) with ample slots: TE = 10
    wf = WorkflowJob(
        id=2, arrival_time=0, earliest_start=0, deadline=100,
        stages=[
            Stage("A", [_task("a", 2, duration=4)]),
            Stage("B", [_task("b", 2, duration=6)]),
        ],
        edges=[("A", "B")],
    )
    assert wf.critical_path_time(4, 4) == 10


def test_critical_path_takes_longest_branch():
    wf = _diamond()
    # A(5) -> max(B: two 5s on many slots = 5, C: 5) -> D(5): 15
    assert wf.critical_path_time(10, 10) == 15
    # with one map slot, B serialises: A(5) + B(10) + D(5) = 20
    assert wf.critical_path_time(1, 1) == 20


def test_from_mapreduce_round_trip():
    job = make_job(3, (5, 7), (4,), deadline=99)
    wf = from_mapreduce(job)
    assert [s.name for s in wf.stages] == ["map", "reduce"]
    assert wf.edges == [("map", "reduce")]
    assert wf.deadline == 99
    assert len(wf.tasks) == 3
    map_only = from_mapreduce(make_job(4, (5,)))
    assert [s.name for s in map_only.stages] == ["map"]
    assert map_only.edges == []


def test_validate_workflows_catches_problems():
    good = _diamond(0)
    assert validate_workflows([good]) == []
    dup = _diamond(0)
    assert any("duplicate" in p for p in validate_workflows([good, dup]))
    bad_sla = _diamond(1)
    bad_sla.earliest_start = -5
    bad_sla.arrival_time = 0
    assert any("EST before arrival" in p for p in validate_workflows([bad_sla]))


def test_generator_produces_valid_workflows():
    params = WorkflowWorkloadParams(num_jobs=15, stages_range=(2, 5))
    wfs = generate_workflow_workload(params, seed=5)
    assert len(wfs) == 15
    assert validate_workflows(wfs) == []
    for wf in wfs:
        # spine guarantees weak connectivity of consecutive stages
        assert len(wf.stages) >= 2
        te = wf.critical_path_time(
            params.total_map_slots, params.total_reduce_slots
        )
        assert wf.deadline - wf.arrival_time >= te


def test_generator_deterministic():
    params = WorkflowWorkloadParams(num_jobs=6)
    a = generate_workflow_workload(params, seed=9)
    b = generate_workflow_workload(params, seed=9)
    assert [w.deadline for w in a] == [w.deadline for w in b]
    assert [w.edges for w in a] == [w.edges for w in b]


def test_generator_extra_edges_make_dags_not_chains():
    params = WorkflowWorkloadParams(
        num_jobs=20, stages_range=(4, 6), extra_edge_probability=0.8
    )
    wfs = generate_workflow_workload(params, seed=11)
    assert any(len(w.edges) > len(w.stages) - 1 for w in wfs)


def test_generator_param_validation():
    with pytest.raises(ValueError):
        generate_workflow_workload(WorkflowWorkloadParams(num_jobs=0))
    with pytest.raises(ValueError):
        generate_workflow_workload(WorkflowWorkloadParams(stages_range=(0, 2)))
    with pytest.raises(ValueError):
        generate_workflow_workload(
            WorkflowWorkloadParams(extra_edge_probability=2.0)
        )
