"""Property-based workload tests: every generated workload is well-formed."""

from hypothesis import given, settings, strategies as st

from repro.workload.entities import minimum_execution_time
from repro.workload.facebook import FacebookWorkloadParams, generate_facebook_workload
from repro.workload.synthetic import SyntheticWorkloadParams, generate_synthetic_workload
from repro.workload.traces import jobs_from_json, jobs_to_json
from repro.workload.validate import validate_jobs


@st.composite
def synthetic_params(draw):
    map_hi = draw(st.integers(1, 20))
    red_hi = draw(st.integers(0, 20))
    return SyntheticWorkloadParams(
        num_jobs=draw(st.integers(1, 20)),
        map_tasks_range=(1, map_hi),
        reduce_tasks_range=(0 if red_hi == 0 else 1, max(red_hi, 1)),
        e_max=draw(st.integers(1, 50)),
        ar_probability=draw(st.floats(0.0, 1.0)),
        s_max=draw(st.integers(1, 10_000)),
        deadline_multiplier_max=draw(st.floats(1.0, 10.0)),
        arrival_rate=draw(st.floats(0.001, 1.0)),
        total_map_slots=draw(st.integers(1, 50)),
        total_reduce_slots=draw(st.integers(1, 50)),
    )


@given(synthetic_params(), st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_synthetic_workloads_always_valid(params, seed):
    jobs = generate_synthetic_workload(params, seed=seed)
    assert validate_jobs(jobs) == []
    for j in jobs:
        # deadline always allows TE at full parallelism
        te = minimum_execution_time(
            j, params.total_map_slots, params.total_reduce_slots
        )
        assert j.deadline - j.earliest_start >= te


@given(synthetic_params(), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_trace_round_trip_property(params, seed):
    jobs = generate_synthetic_workload(params, seed=seed)
    restored = jobs_from_json(jobs_to_json(jobs))
    assert jobs_to_json(restored) == jobs_to_json(jobs)


@given(
    st.integers(1, 40),
    st.floats(0.00005, 0.01),
    st.floats(0.005, 1.0),
    st.integers(0, 500),
)
@settings(max_examples=40, deadline=None)
def test_facebook_workloads_always_valid(num_jobs, rate, scale, seed):
    params = FacebookWorkloadParams(
        num_jobs=num_jobs, arrival_rate=rate, scale=scale
    )
    jobs = generate_facebook_workload(params, seed=seed)
    assert validate_jobs(jobs) == []
