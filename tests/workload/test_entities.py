"""Job / Task / Resource entities and TE computation."""

import pytest

from repro.workload.entities import (
    Resource,
    TaskKind,
    cluster_capacities,
    make_uniform_cluster,
    minimum_execution_time,
)

from tests.conftest import make_job, make_task


def test_job_derived_properties():
    job = make_job(1, map_durations=(5, 7), reduce_durations=(3,), deadline=100)
    assert job.num_map_tasks == 2
    assert job.num_reduce_tasks == 1
    assert job.total_map_work == 12
    assert job.total_reduce_work == 3
    assert job.total_work == 15
    assert len(job.tasks) == 3


def test_laxity():
    job = make_job(1, map_durations=(5,), reduce_durations=(5,),
                   earliest_start=10, deadline=40)
    assert job.laxity() == 40 - 10 - 10


def test_last_stage_tasks_map_only_job():
    job = make_job(2, map_durations=(5, 5))
    assert job.last_stage_tasks == job.map_tasks
    job2 = make_job(3, map_durations=(5,), reduce_durations=(2,))
    assert job2.last_stage_tasks == job2.reduce_tasks


def test_completion_and_reset():
    job = make_job(1, map_durations=(5,), reduce_durations=(3,))
    assert not job.is_completed
    for t in job.tasks:
        t.is_completed = True
    assert job.is_completed
    assert job.pending_tasks == []
    job.reset_runtime_state()
    assert not job.is_completed
    assert len(job.pending_tasks) == 2


def test_copy_resets_runtime_state():
    job = make_job(1, map_durations=(5,))
    job.map_tasks[0].is_completed = True
    clone = job.copy()
    assert clone.id == job.id
    assert not clone.map_tasks[0].is_completed
    assert clone.map_tasks[0] is not job.map_tasks[0]


def test_resource_validation():
    with pytest.raises(ValueError):
        Resource(0, -1, 2)


def test_make_uniform_cluster():
    cluster = make_uniform_cluster(3, 2, 4)
    assert len(cluster) == 3
    assert cluster_capacities(cluster) == (6, 12)
    with pytest.raises(ValueError):
        make_uniform_cluster(0)


def test_te_fully_parallel():
    # fewer tasks than slots: TE = max map + max reduce
    job = make_job(1, map_durations=(5, 9, 3), reduce_durations=(4, 6))
    assert minimum_execution_time(job, 10, 10) == 9 + 6


def test_te_limited_slots_uses_lpt_makespan():
    # maps 5,9,3 on 1 slot = 17; reduces 4,6 on 1 slot = 10
    job = make_job(1, map_durations=(5, 9, 3), reduce_durations=(4, 6))
    assert minimum_execution_time(job, 1, 1) == 27
    # 2 slots: LPT -> maps {9} {5,3} = 9 ; reduces {6} {4} = 6
    assert minimum_execution_time(job, 2, 2) == 15


def test_te_map_only():
    job = make_job(1, map_durations=(5, 5))
    assert minimum_execution_time(job, 2, 0) == 5


def test_te_with_tasks_but_no_slots_rejected():
    job = make_job(1, map_durations=(5,))
    with pytest.raises(ValueError):
        minimum_execution_time(job, 0, 1)


def test_task_kind_helpers():
    t = make_task("x", kind=TaskKind.MAP)
    assert t.is_map and not t.is_reduce
