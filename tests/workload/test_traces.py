"""Trace persistence round-trips."""

import pytest

from repro.workload.synthetic import SyntheticWorkloadParams, generate_synthetic_workload
from repro.workload.traces import (
    jobs_from_json,
    jobs_to_json,
    load_trace,
    save_trace,
)


def _jobs():
    params = SyntheticWorkloadParams(
        num_jobs=8,
        map_tasks_range=(1, 5),
        reduce_tasks_range=(0, 3),
        e_max=10,
        arrival_rate=0.1,
        total_map_slots=4,
        total_reduce_slots=4,
    )
    return generate_synthetic_workload(params, seed=3)


def test_json_round_trip_is_lossless():
    jobs = _jobs()
    restored = jobs_from_json(jobs_to_json(jobs))
    assert len(restored) == len(jobs)
    for a, b in zip(jobs, restored):
        assert (a.id, a.arrival_time, a.earliest_start, a.deadline) == (
            b.id,
            b.arrival_time,
            b.earliest_start,
            b.deadline,
        )
        assert [(t.id, t.duration, t.kind) for t in a.tasks] == [
            (t.id, t.duration, t.kind) for t in b.tasks
        ]


def test_file_round_trip(tmp_path):
    jobs = _jobs()
    path = tmp_path / "trace.json"
    save_trace(jobs, path)
    restored = load_trace(path)
    assert [j.id for j in restored] == [j.id for j in jobs]


def test_runtime_state_not_persisted():
    jobs = _jobs()
    jobs[0].map_tasks[0].is_completed = True
    restored = jobs_from_json(jobs_to_json(jobs))
    assert not restored[0].map_tasks[0].is_completed


def test_unknown_version_rejected():
    with pytest.raises(ValueError):
        jobs_from_json('{"version": 99, "jobs": []}')


def test_workflow_trace_round_trip(tmp_path):
    from repro.workload.traces import (
        load_workflow_trace,
        save_workflow_trace,
        workflows_from_json,
        workflows_to_json,
    )
    from repro.workload.workflows import (
        WorkflowWorkloadParams,
        generate_workflow_workload,
        validate_workflows,
    )

    wfs = generate_workflow_workload(
        WorkflowWorkloadParams(num_jobs=5, stages_range=(2, 4)), seed=7
    )
    restored = workflows_from_json(workflows_to_json(wfs))
    assert validate_workflows(restored) == []
    assert workflows_to_json(restored) == workflows_to_json(wfs)
    for a, b in zip(wfs, restored):
        assert a.edges == b.edges
        assert [s.name for s in a.stages] == [s.name for s in b.stages]

    path = tmp_path / "wf.json"
    save_workflow_trace(wfs, path)
    assert [w.id for w in load_workflow_trace(path)] == [w.id for w in wfs]


def test_workflow_trace_rejects_plain_job_trace():
    from repro.workload.traces import workflows_from_json

    with pytest.raises(ValueError, match="workflow"):
        workflows_from_json('{"version": 1, "jobs": []}')
