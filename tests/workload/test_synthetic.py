"""Table 3 synthetic workload generator."""

import pytest

from repro.workload.entities import minimum_execution_time
from repro.workload.synthetic import (
    SyntheticWorkloadParams,
    generate_synthetic_workload,
)
from repro.workload.validate import validate_jobs


def _params(**kw):
    defaults = dict(
        num_jobs=30,
        map_tasks_range=(1, 10),
        reduce_tasks_range=(1, 10),
        e_max=10,
        ar_probability=0.5,
        s_max=100,
        deadline_multiplier_max=3.0,
        arrival_rate=0.05,
        total_map_slots=10,
        total_reduce_slots=10,
    )
    defaults.update(kw)
    return SyntheticWorkloadParams(**defaults)


def test_workload_is_well_formed():
    jobs = generate_synthetic_workload(_params(), seed=1)
    assert len(jobs) == 30
    assert validate_jobs(jobs) == []


def test_deterministic_given_seed():
    a = generate_synthetic_workload(_params(), seed=9)
    b = generate_synthetic_workload(_params(), seed=9)
    assert [j.deadline for j in a] == [j.deadline for j in b]
    assert [t.duration for j in a for t in j.tasks] == [
        t.duration for j in b for t in j.tasks
    ]


def test_seeds_differ():
    a = generate_synthetic_workload(_params(), seed=1)
    b = generate_synthetic_workload(_params(), seed=2)
    assert [j.deadline for j in a] != [j.deadline for j in b]


def test_task_count_ranges_respected():
    jobs = generate_synthetic_workload(_params(num_jobs=100), seed=3)
    for j in jobs:
        assert 1 <= j.num_map_tasks <= 10
        assert 1 <= j.num_reduce_tasks <= 10


def test_map_durations_respect_e_max():
    jobs = generate_synthetic_workload(_params(num_jobs=60, e_max=7), seed=4)
    for j in jobs:
        for t in j.map_tasks:
            assert 1 <= t.duration <= 7


def test_reduce_durations_follow_formula():
    jobs = generate_synthetic_workload(_params(num_jobs=40), seed=5)
    for j in jobs:
        base = round(3.0 * j.total_map_work / j.num_reduce_tasks)
        for t in j.reduce_tasks:
            assert base + 1 <= t.duration <= base + 10


def test_ar_probability_zero_means_start_at_arrival():
    jobs = generate_synthetic_workload(_params(ar_probability=0.0), seed=6)
    assert all(j.earliest_start == j.arrival_time for j in jobs)


def test_ar_probability_one_means_future_starts():
    jobs = generate_synthetic_workload(
        _params(ar_probability=1.0, s_max=50), seed=7
    )
    assert all(
        j.arrival_time + 1 <= j.earliest_start <= j.arrival_time + 50
        for j in jobs
    )


def test_ar_probability_mixes():
    jobs = generate_synthetic_workload(
        _params(num_jobs=200, ar_probability=0.5), seed=8
    )
    ar = sum(1 for j in jobs if j.earliest_start > j.arrival_time)
    assert 60 <= ar <= 140  # roughly half


def test_deadline_bounds_from_te():
    params = _params(num_jobs=50, deadline_multiplier_max=4.0)
    jobs = generate_synthetic_workload(params, seed=9)
    for j in jobs:
        te = minimum_execution_time(j, 10, 10)
        slack = j.deadline - j.earliest_start
        assert te <= slack <= 4 * te + 1  # ceil adds at most 1


def test_arrival_rate_controls_interarrivals():
    fast = generate_synthetic_workload(
        _params(num_jobs=200, arrival_rate=1.0), seed=10
    )
    slow = generate_synthetic_workload(
        _params(num_jobs=200, arrival_rate=0.01), seed=10
    )
    assert fast[-1].arrival_time < slow[-1].arrival_time


def test_scale_shrinks_task_counts():
    params = _params(map_tasks_range=(1, 100), reduce_tasks_range=(1, 100))
    params.scale = 0.1
    jobs = generate_synthetic_workload(params, seed=11)
    for j in jobs:
        assert j.num_map_tasks <= 10
        assert j.num_reduce_tasks <= 10


def test_first_job_id_offset():
    params = _params(num_jobs=3)
    params.first_job_id = 100
    jobs = generate_synthetic_workload(params, seed=12)
    assert [j.id for j in jobs] == [100, 101, 102]


def test_parameter_validation():
    with pytest.raises(ValueError):
        generate_synthetic_workload(_params(num_jobs=0))
    with pytest.raises(ValueError):
        generate_synthetic_workload(_params(ar_probability=1.5))
    with pytest.raises(ValueError):
        generate_synthetic_workload(_params(e_max=0))
    with pytest.raises(ValueError):
        generate_synthetic_workload(_params(arrival_rate=0.0))
    with pytest.raises(ValueError):
        generate_synthetic_workload(_params(deadline_multiplier_max=0.5))


def test_shared_streams_are_factor_stable():
    """Changing e_max must not change arrival times (common random numbers)."""
    a = generate_synthetic_workload(_params(e_max=5), seed=13)
    b = generate_synthetic_workload(_params(e_max=50), seed=13)
    assert [j.arrival_time for j in a] == [j.arrival_time for j in b]
    assert [j.num_map_tasks for j in a] == [j.num_map_tasks for j in b]
