"""Table 4 Facebook workload generator."""

import math

import pytest

from repro.workload.facebook import (
    FACEBOOK_JOB_TYPES,
    FacebookWorkloadParams,
    generate_facebook_workload,
)
from repro.workload.validate import validate_jobs


def test_table4_mix_sums_to_1000():
    assert sum(c for _, _, c in FACEBOOK_JOB_TYPES) == 1000


def test_workload_well_formed():
    params = FacebookWorkloadParams(num_jobs=50, scale=0.05)
    jobs = generate_facebook_workload(params, seed=1)
    assert len(jobs) == 50
    assert validate_jobs(jobs) == []


def test_job_shapes_come_from_table4():
    params = FacebookWorkloadParams(num_jobs=300, scale=1.0)
    jobs = generate_facebook_workload(params, seed=2)
    shapes = {(k, r) for k, r, _ in FACEBOOK_JOB_TYPES}
    for j in jobs:
        assert (j.num_map_tasks, j.num_reduce_tasks) in shapes


def test_map_only_jobs_exist_and_have_no_reduces():
    params = FacebookWorkloadParams(num_jobs=200, scale=1.0)
    jobs = generate_facebook_workload(params, seed=3)
    map_only = [j for j in jobs if j.num_reduce_tasks == 0]
    assert map_only  # 74% of the mix is map-only
    for j in map_only:
        assert j.last_stage_tasks == j.map_tasks


def test_type_mix_roughly_matches_weights():
    params = FacebookWorkloadParams(num_jobs=2000, scale=1.0)
    jobs = generate_facebook_workload(params, seed=4)
    single_map = sum(
        1 for j in jobs if (j.num_map_tasks, j.num_reduce_tasks) == (1, 0)
    )
    # expected 38%; allow generous sampling noise
    assert 0.30 <= single_map / len(jobs) <= 0.46


def test_durations_scale_with_lognormal_means():
    params = FacebookWorkloadParams(num_jobs=150, scale=0.05)
    jobs = generate_facebook_workload(params, seed=5)
    map_durs = [t.duration for j in jobs for t in j.map_tasks]
    red_durs = [t.duration for j in jobs for t in j.reduce_tasks]
    # LN means: map ~ exp(9.9511 + 1.6764/2) ms ~ 48.7 s;
    # reduce ~ exp(12.375 + 1.6262/2) ms ~ 534 s.
    assert 15 <= sum(map_durs) / len(map_durs) <= 150
    assert 150 <= sum(red_durs) / len(red_durs) <= 1600
    assert all(d >= 1 for d in map_durs + red_durs)


def test_scale_shrinks_counts_but_preserves_shape():
    params = FacebookWorkloadParams(num_jobs=200, scale=0.01)
    jobs = generate_facebook_workload(params, seed=6)
    for j in jobs:
        assert j.num_map_tasks >= 1  # never scaled to zero maps
        assert j.num_map_tasks <= max(1, math.ceil(4800 * 0.01) + 1)


def test_earliest_start_equals_arrival():
    params = FacebookWorkloadParams(num_jobs=30, scale=0.05)
    jobs = generate_facebook_workload(params, seed=7)
    assert all(j.earliest_start == j.arrival_time for j in jobs)  # p = 0


def test_max_task_seconds_cap():
    params = FacebookWorkloadParams(num_jobs=60, scale=0.05, max_task_seconds=30)
    jobs = generate_facebook_workload(params, seed=8)
    assert all(t.duration <= 30 for j in jobs for t in j.tasks)


def test_deterministic_given_seed():
    params = FacebookWorkloadParams(num_jobs=40, scale=0.05)
    a = generate_facebook_workload(params, seed=9)
    b = generate_facebook_workload(params, seed=9)
    assert [j.deadline for j in a] == [j.deadline for j in b]


def test_exact_mix_reproduces_table4_composition():
    params = FacebookWorkloadParams(num_jobs=1000, scale=1.0, exact_mix=True)
    jobs = generate_facebook_workload(params, seed=10)
    counts = {}
    for j in jobs:
        counts[(j.num_map_tasks, j.num_reduce_tasks)] = (
            counts.get((j.num_map_tasks, j.num_reduce_tasks), 0) + 1
        )
    for k_mp, k_rd, expected in FACEBOOK_JOB_TYPES:
        assert counts[(k_mp, k_rd)] == expected


def test_exact_mix_small_multiple_of_50():
    params = FacebookWorkloadParams(num_jobs=50, scale=1.0, exact_mix=True)
    jobs = generate_facebook_workload(params, seed=11)
    counts = {}
    for j in jobs:
        key = (j.num_map_tasks, j.num_reduce_tasks)
        counts[key] = counts.get(key, 0) + 1
    for k_mp, k_rd, expected in FACEBOOK_JOB_TYPES:
        assert counts[(k_mp, k_rd)] == expected // 20


def test_exact_mix_requires_multiple_of_50():
    params = FacebookWorkloadParams(num_jobs=60, exact_mix=True)
    with pytest.raises(ValueError, match="multiple of 50"):
        generate_facebook_workload(params)


def test_exact_mix_order_is_shuffled_and_deterministic():
    params = FacebookWorkloadParams(num_jobs=100, scale=1.0, exact_mix=True)
    a = generate_facebook_workload(params, seed=12)
    b = generate_facebook_workload(params, seed=12)
    shapes_a = [(j.num_map_tasks, j.num_reduce_tasks) for j in a]
    shapes_b = [(j.num_map_tasks, j.num_reduce_tasks) for j in b]
    assert shapes_a == shapes_b  # deterministic
    assert shapes_a != sorted(shapes_a)  # not grouped by type


def test_parameter_validation():
    with pytest.raises(ValueError):
        generate_facebook_workload(FacebookWorkloadParams(num_jobs=0))
    with pytest.raises(ValueError):
        generate_facebook_workload(FacebookWorkloadParams(arrival_rate=0))
    with pytest.raises(ValueError):
        generate_facebook_workload(FacebookWorkloadParams(scale=0))
