"""Tracer: span recording, two timebases, null fast path, file output."""

import json

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    SIM_PID,
    WALL_PID,
    TraceRecorder,
    Tracer,
)


class FakeClock:
    """A controllable wall clock (seconds)."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def make_tracer():
    clock = FakeClock()
    tracer = Tracer(TraceRecorder(), wall_clock=clock)
    return tracer, clock


def test_disabled_tracer_is_all_noops():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.span("x") is NULL_SPAN
    NULL_TRACER.marker("x")
    NULL_TRACER.instant("x")
    NULL_TRACER.sim_span("x", "cat", 0.0, 1.0)
    NULL_TRACER.counter_sample("x", {"v": 1.0})
    with pytest.raises(RuntimeError):
        NULL_TRACER.write("/tmp/never.json")


def test_null_span_is_shared_and_inert():
    span = NULL_TRACER.span("a")
    assert span is NULL_TRACER.span("b")  # no allocation per call
    with span as s:
        assert s.add(key="value") is s  # chainable no-op


def test_span_records_complete_event_with_both_clocks():
    tracer, clock = make_tracer()
    tracer.bind_sim_clock(lambda: 42.0)
    clock.t = 1.0
    with tracer.span("work", "cat", {"n": 3}) as span:
        span.add(extra=True)
        clock.t = 1.5
    (event,) = tracer.recorder.events
    assert event["name"] == "work"
    assert event["cat"] == "cat"
    assert event["ph"] == "X"
    assert event["pid"] == WALL_PID
    assert event["ts"] == pytest.approx(1.0e6)  # epoch was t=0
    assert event["dur"] == pytest.approx(0.5e6)
    assert event["args"]["n"] == 3
    assert event["args"]["extra"] is True
    assert event["args"]["sim_time"] == 42.0


def test_marker_is_zero_duration_span():
    tracer, _ = make_tracer()
    tracer.marker("cp.search", "cp.phase", {"skipped": True})
    (event,) = tracer.recorder.events
    assert event["ph"] == "X"
    assert event["dur"] == 0.0
    assert event["args"]["skipped"] is True


def test_sim_span_lands_on_sim_process_in_microseconds():
    tracer, _ = make_tracer()
    tracer.sim_span("t0_m0", "task", 10.0, 25.0, tid=3, args={"job": 0})
    (event,) = tracer.recorder.events
    assert event["pid"] == SIM_PID
    assert event["tid"] == 3
    assert event["ts"] == pytest.approx(10.0e6)
    assert event["dur"] == pytest.approx(15.0e6)


def test_instant_on_both_tracks():
    tracer, _ = make_tracer()
    tracer.bind_sim_clock(lambda: 7.0)
    tracer.instant("wall-ev")
    tracer.instant("sim-ev", sim_track=True)
    wall, sim = tracer.recorder.events
    assert wall["ph"] == "i" and wall["pid"] == WALL_PID
    assert wall["args"]["sim_time"] == 7.0
    assert sim["pid"] == SIM_PID
    assert sim["ts"] == pytest.approx(7.0e6)


def test_write_produces_loadable_chrome_trace_and_jsonl(tmp_path):
    tracer, clock = make_tracer()
    tracer.registry.counter("events").inc(3)
    with tracer.span("work"):
        clock.t = 0.25
    path = str(tmp_path / "trace.json")
    chrome_path, jsonl_path = tracer.write(path)
    assert chrome_path == path
    assert jsonl_path == str(tmp_path / "trace.jsonl")

    with open(chrome_path, encoding="utf-8") as fh:
        doc = json.load(fh)
    names = [e["name"] for e in doc["traceEvents"]]
    assert "work" in names
    assert names.count("process_name") == 2  # both timebase labels
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["metrics"]["events"] == 3

    lines = [
        json.loads(line)
        for line in open(jsonl_path, encoding="utf-8")
        if line.strip()
    ]
    assert lines[-1]["name"] == "metrics.snapshot"
    assert lines[-1]["args"]["events"] == 3
    assert any(line["name"] == "work" for line in lines)


def test_jsonl_path_appends_when_no_json_suffix(tmp_path):
    tracer, _ = make_tracer()
    tracer.marker("m")
    path = str(tmp_path / "trace.out")
    _, jsonl_path = tracer.write(path)
    assert jsonl_path == path + ".jsonl"


def test_enabled_tracer_gets_private_registry():
    a, _ = make_tracer()
    b, _ = make_tracer()
    a.registry.counter("x").inc()
    assert b.registry.as_dict() == {}
