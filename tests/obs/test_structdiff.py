"""Shared structural-diff core."""

import pytest

from repro.obs.structdiff import (
    DiffEntry,
    diff_paths,
    first_mismatch,
    format_entries,
    structural_diff,
)


def test_equal_values_yield_no_entries():
    value = {"a": [1, {"b": 2}], "c": None}
    assert structural_diff(value, value) == []
    assert first_mismatch(value, value) is None


def test_changed_leaf_reports_both_values():
    [entry] = structural_diff({"x": {"y": 1}}, {"x": {"y": 2}})
    assert entry == DiffEntry("x.y", "changed", 1, 2)
    assert entry.render() == "x.y: a=1 b=2"
    assert entry.render("snapshot", "replay") == "x.y: snapshot=1 replay=2"


def test_missing_and_extra_keys():
    entries = structural_diff({"only_a": 1, "both": 0}, {"only_b": 2, "both": 0})
    assert [(e.path, e.kind) for e in entries] == [
        ("only_a", "missing"),
        ("only_b", "extra"),
    ]
    assert "only in a" in entries[0].render()
    assert "only in b" in entries[1].render()


def test_list_index_paths_and_length_entry():
    entries = structural_diff({"xs": [1, 2, 3]}, {"xs": [1, 9]})
    assert [(e.path, e.kind) for e in entries] == [
        ("xs[1]", "changed"),
        ("xs", "length"),
    ]
    assert entries[1].left == 3 and entries[1].right == 2
    assert "length 3" in entries[1].render()


def test_type_mismatch_is_a_changed_leaf():
    [entry] = structural_diff({"v": [1]}, {"v": {"0": 1}})
    assert entry.kind == "changed" and entry.path == "v"


def test_entry_order_is_deterministic_sorted_keys():
    a = {"z": 1, "a": 1, "m": 1}
    b = {"z": 2, "a": 2, "m": 2}
    assert [e.path for e in structural_diff(a, b)] == ["a", "m", "z"]


def test_max_entries_bounds_the_walk():
    a = {str(i): i for i in range(50)}
    b = {str(i): i + 1 for i in range(50)}
    assert len(structural_diff(a, b, max_entries=3)) == 3
    assert first_mismatch(a, b).path == "0"


def test_diff_paths_renders_strings():
    paths = diff_paths({"k": 1}, {"k": 2})
    assert paths == ["k: a=1 b=2"]


def test_format_entries_elides_past_the_limit():
    entries = structural_diff(
        {str(i): i for i in range(9)}, {str(i): -i for i in range(9)}
    )
    text = format_entries(entries, limit=2, left_label="x", right_label="y")
    assert text.count("x=") == 2
    assert "(+6 more)" in text  # key "0" is equal on both sides


def test_as_dict_is_json_safe():
    class Weird:
        def __repr__(self):
            return "<weird>"

    entry = DiffEntry("p", "changed", left=Weird(), right=(1, 2))
    d = entry.as_dict()
    assert d == {"path": "p", "kind": "changed", "a": "<weird>", "b": [1, 2]}


def test_scalar_root_diff():
    [entry] = structural_diff(1, 2)
    assert entry.path == "" and entry.kind == "changed"


@pytest.mark.parametrize("value", [None, 0, "", [], {}])
def test_falsy_values_compare_cleanly(value):
    assert structural_diff(value, value) == []
