"""Per-job lateness attribution: parsing, outage pairing, the waterfall."""

from types import SimpleNamespace

from repro.obs.forensics import (
    attribute_lateness,
    attributions_csv,
    format_attributions,
    load_trace_events,
    outage_windows,
    parse_attempts,
)
from tests.conftest import make_job

_US = 1_000_000


def _task_span(task_id, job, ts, dur, resource=0, kind="MAP", slot=0,
               planned=None, failed_attempts=None):
    args = {"job": job, "kind": kind, "slot": slot}
    if planned is not None:
        args["planned"] = planned
    if failed_attempts:
        args["failed_attempts"] = failed_attempts
    return {
        "name": task_id, "ph": "X", "cat": "task", "pid": 2, "tid": resource,
        "ts": int(ts * _US), "dur": int(dur * _US), "args": args,
    }


def _failed(task_id, job, start, ts, resource=0, reason="failed", kind="MAP",
            slot=0):
    return {
        "name": "task.failed", "ph": "i", "s": "g", "pid": 2, "tid": resource,
        "ts": int(ts * _US),
        "args": {"task": task_id, "job": job, "reason": reason,
                 "start": start, "resource": resource, "kind": kind,
                 "slot": slot},
    }


def _instant(name, ts, **args):
    return {"name": name, "ph": "i", "s": "g", "pid": 2, "tid": 0,
            "ts": int(ts * _US), "args": args}


def _metrics(tardiness_by_job, turnarounds):
    """attribute_lateness only reads these two mappings (duck-typed)."""
    return SimpleNamespace(
        tardiness_by_job=tardiness_by_job, turnarounds=turnarounds
    )


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def test_parse_attempts_completed_and_failed():
    events = [
        _task_span("t1_m0", 1, ts=30.0, dur=50.0, planned=40),
        _failed("t1_m1", 1, start=5.0, ts=12.0, reason="outage"),
        _instant("fault.outage", 4.0, resource=0),  # not an attempt
    ]
    attempts = parse_attempts(events)
    assert len(attempts) == 2
    failed, completed = attempts  # sorted by start (5.0 < 30.0)
    assert failed.outcome == "outage"
    assert failed.duration == 7.0
    assert completed.outcome == "completed"
    assert completed.planned == 40
    assert completed.inflation == 10.0  # 50 actual vs 40 planned


def test_parse_attempts_no_planned_no_inflation():
    [a] = parse_attempts([_task_span("t", 0, ts=0.0, dur=9.0)])
    assert a.planned is None and a.inflation == 0.0


def test_outage_windows_paired_and_open():
    events = [
        _instant("fault.outage", 10.0, resource=1),
        _instant("fault.recovery", 25.0, resource=1),
        _instant("fault.outage", 40.0, resource=2),  # never recovers
        _task_span("t", 0, ts=50.0, dur=10.0),  # extends the horizon
    ]
    windows = outage_windows(events)
    assert windows[0] == {"resource": 1, "start": 10.0, "end": 25.0}
    assert windows[1]["resource"] == 2
    assert windows[1]["end"] == 60.0  # open-ended -> trace horizon


def test_load_trace_events_jsonl_and_chrome(tmp_path):
    jsonl = tmp_path / "t.jsonl"
    jsonl.write_text(
        '{"name": "a", "ph": "X", "ts": 0, "dur": 1}\n'
        '{"name": "metrics.snapshot", "counters": {}}\n'
    )
    events = load_trace_events(str(jsonl))
    assert [e["name"] for e in events] == ["a"]  # snapshot skipped
    chrome = tmp_path / "t.json"
    chrome.write_text('{"traceEvents": [{"name": "b", "ph": "M"}]}')
    assert [e["name"] for e in load_trace_events(str(chrome))] == ["b"]


# ---------------------------------------------------------------------------
# The capped waterfall
# ---------------------------------------------------------------------------


def test_contention_dominated_attribution():
    """First start slipped 20s past s_j; tardiness 10s -> all contention."""
    job = make_job(1, arrival=0, earliest_start=10, deadline=100)
    events = [_task_span("t1_m0", 1, ts=30.0, dur=70.0)]
    metrics = _metrics({1: 10}, {1: 100})  # completion = 10 + 100 = 110
    [a] = attribute_lateness(metrics, [job], events)
    assert a.tardiness_us == 10 * _US
    assert a.contention_us == 10 * _US  # capped from raw 20s
    assert a.solver_us == a.fault_us == a.residual_us == 0
    assert a.raw_contention == 20.0  # uncapped measure preserved
    assert a.dominant() == "contention"
    assert sum(a.components_us.values()) == a.tardiness_us


def test_solver_component_from_plan_history():
    """No contention; plan-history overhead in the window becomes solver."""
    job = make_job(2, arrival=0, earliest_start=0, deadline=50)
    events = [_task_span("t2_m0", 2, ts=0.0, dur=54.0)]
    history = [
        SimpleNamespace(t=0, outcome="optimal", overhead=1.5, trigger="submit"),
        SimpleNamespace(t=90, outcome="optimal", overhead=9.0, trigger="release"),
    ]
    metrics = _metrics({2: 4}, {2: 54})
    [a] = attribute_lateness(metrics, [job], events, plan_history=history)
    assert a.contention_us == 0
    assert a.solver_us == int(1.5 * _US)  # only the in-window record
    assert a.raw_solver == 1.5
    assert a.residual_us == int(2.5 * _US)
    assert sum(a.components_us.values()) == a.tardiness_us


def test_solver_component_from_invocation_spans():
    """Without plan history, wall-pid scheduler.invocation spans are used."""
    job = make_job(3, arrival=0, earliest_start=0, deadline=50)
    events = [
        _task_span("t3_m0", 3, ts=10.0, dur=45.0),
        {"name": "scheduler.invocation", "ph": "X", "pid": 1, "tid": 1,
         "ts": 0, "dur": 2 * _US, "args": {"sim_time": 0}},
        {"name": "scheduler.invocation", "ph": "X", "pid": 1, "tid": 1,
         "ts": 0, "dur": 7 * _US, "args": {"sim_time": 99}},  # after start
    ]
    metrics = _metrics({3: 5}, {3: 55})
    [a] = attribute_lateness(metrics, [job], events)
    assert a.raw_solver == 2.0
    assert a.solver_us == 0  # contention (10s raw) soaked the full 5s first
    assert a.contention_us == 5 * _US


def test_fault_component_failed_attempts_and_inflation():
    job = make_job(4, arrival=0, earliest_start=0, deadline=100)
    events = [
        _failed("t4_m0", 4, start=0.0, ts=30.0),  # 30s lost to a failure
        _task_span("t4_m0", 4, ts=30.0, dur=80.0, planned=60),  # +20s inflation
    ]
    metrics = _metrics({4: 10}, {4: 110})
    [a] = attribute_lateness(metrics, [job], events)
    assert a.raw_fault == 50.0  # 30 failed + 20 straggler inflation
    assert a.fault_us == 10 * _US  # capped at the tardiness
    assert a.residual_us == 0
    assert a.dominant() == "fault"


def test_residual_when_nothing_measured():
    """A late job with no measured delays lands entirely in residual."""
    job = make_job(5, arrival=0, earliest_start=0, deadline=10)
    events = [_task_span("t5_m0", 5, ts=0.0, dur=25.0)]
    metrics = _metrics({5: 15}, {5: 25})
    [a] = attribute_lateness(metrics, [job], events)
    assert a.residual_us == 15 * _US
    assert a.dominant() == "residual"


def test_untraced_job_is_all_residual():
    """No attempts in the trace for the job -> no raw measures at all."""
    job = make_job(6, arrival=0, earliest_start=0, deadline=10)
    metrics = _metrics({6: 3}, {6: 13})
    [a] = attribute_lateness(metrics, [job], [])
    assert a.first_start is None
    assert a.components_us["residual"] == 3 * _US


def test_formatters():
    job = make_job(1, arrival=0, earliest_start=10, deadline=100)
    events = [_task_span("t1_m0", 1, ts=30.0, dur=70.0)]
    attrs = attribute_lateness(_metrics({1: 10}, {1: 100}), [job], events)
    table = format_attributions(attrs)
    assert "contention" in table and "dominant" in table
    csv = attributions_csv(attrs)
    assert csv.startswith("job_id,")
    assert csv.count("\n") == 2  # header + one row (trailing newline)
    assert format_attributions([]) == "no late jobs: nothing to attribute"


def test_outage_window_unpaired_begin_at_trace_end():
    """An outage opening on the very last event closes at its own instant
    (a zero-length open window, not a negative or missing one)."""
    events = [
        _task_span("t", 0, ts=0.0, dur=10.0),
        _instant("fault.outage", 30.0, resource=0),
    ]
    [window] = outage_windows(events)
    assert window == {"resource": 0, "start": 30.0, "end": 30.0}


def test_outage_window_zero_length_pair():
    """Recovery at the same instant as the outage yields a 0-length window."""
    events = [
        _instant("fault.outage", 12.0, resource=3),
        _instant("fault.recovery", 12.0, resource=3),
    ]
    [window] = outage_windows(events)
    assert window["start"] == window["end"] == 12.0
    assert window["resource"] == 3


def test_outage_window_recovery_without_begin_is_ignored():
    assert outage_windows([_instant("fault.recovery", 5.0, resource=1)]) == []


def test_attribution_round_trips_through_dict():
    import json

    from repro.obs.forensics import attribution_from_dict

    job = make_job(7, arrival=0, earliest_start=0, deadline=10)
    events = [_task_span("t7_m0", 7, ts=20.0, dur=15.0)]
    [a] = attribute_lateness(_metrics({7: 25}, {7: 35}), [job], events)
    row = a.as_dict()
    assert json.loads(json.dumps(row)) == row  # JSON-safe
    assert attribution_from_dict(row) == a
