"""OpenMetrics exporter and its pure-python validator."""

import pytest

from repro.obs.export import (
    escape_label_value,
    render_openmetrics,
    render_series_openmetrics,
    sanitize_metric_name,
    validate_openmetrics,
    write_openmetrics,
)
from repro.obs.metrics import MetricsRegistry


def _registry():
    reg = MetricsRegistry()
    reg.counter("scheduler.invocations").inc(3)
    reg.gauge("sim.now").set(42.5)
    h = reg.histogram("scheduler.overhead_seconds", boundaries=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    return reg


# ------------------------------------------------------------------ naming


def test_sanitize_metric_name():
    assert sanitize_metric_name("scheduler.overhead_seconds") == (
        "scheduler_overhead_seconds"
    )
    assert sanitize_metric_name("9lives") == "_9lives"
    assert sanitize_metric_name("a-b c") == "a_b_c"
    assert sanitize_metric_name("") == "_"


def test_escape_label_value():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


# ----------------------------------------------------------------- renderer


def test_registry_render_is_conformant():
    text = render_openmetrics(_registry())
    assert validate_openmetrics(text) == []
    assert text.endswith("# EOF\n")


def test_counter_gets_total_suffix():
    text = render_openmetrics(_registry())
    assert "# TYPE scheduler_invocations counter" in text
    assert "scheduler_invocations_total 3" in text


def test_histogram_buckets_are_cumulative_with_inf():
    lines = render_openmetrics(_registry()).splitlines()
    h = [ln for ln in lines if ln.startswith("scheduler_overhead_seconds")]
    assert h == [
        'scheduler_overhead_seconds_bucket{le="0.1"} 1',
        'scheduler_overhead_seconds_bucket{le="1"} 2',
        'scheduler_overhead_seconds_bucket{le="+Inf"} 3',
        "scheduler_overhead_seconds_sum 5.55",
        "scheduler_overhead_seconds_count 3",
    ]


def test_empty_registry_renders_bare_eof():
    text = render_openmetrics(MetricsRegistry())
    assert text == "# EOF\n"
    assert validate_openmetrics(text) == []


def test_series_render_is_conformant_with_timestamps():
    samples = [
        {"sim_time": 0.0, "O": 0.001, "jobs_completed": 0,
         "probes": {"scheduler.queue_depth": 1.0}},
        {"sim_time": 5.0, "O": 0.002, "jobs_completed": 2,
         "probes": {"scheduler.queue_depth": 0.0}},
    ]
    text = render_series_openmetrics(samples)
    assert validate_openmetrics(text) == []
    lines = text.splitlines()
    assert "# TYPE telemetry_O gauge" in lines
    assert "telemetry_jobs_completed 2 5" in lines
    assert "telemetry_probe_scheduler_queue_depth 1 0" in lines


def test_series_render_skips_non_numeric_fields():
    text = render_series_openmetrics(
        [{"sim_time": 1.0, "O": 0.5, "final": True, "note": "hi"}]
    )
    assert "final" not in text and "note" not in text
    assert validate_openmetrics(text) == []


# ---------------------------------------------------------------- validator


def test_validator_requires_terminal_eof():
    assert validate_openmetrics("# TYPE a gauge\na 1\n")
    assert any(
        "EOF" in p
        for p in validate_openmetrics("# TYPE a gauge\na 1\n")
    )


def test_validator_rejects_content_after_eof():
    problems = validate_openmetrics("# EOF\na 1\n")
    assert any("after" in p for p in problems)


def test_validator_requires_type_metadata():
    problems = validate_openmetrics("orphan 1\n# EOF\n")
    assert any("no preceding TYPE" in p for p in problems)


def test_validator_rejects_duplicate_type():
    text = "# TYPE a gauge\na 1\n# TYPE a gauge\na 2\n# EOF\n"
    assert any("duplicate TYPE" in p for p in validate_openmetrics(text))


def test_validator_rejects_counter_without_total():
    text = "# TYPE hits counter\nhits 5\n# EOF\n"
    assert any("_total" in p for p in validate_openmetrics(text))


def test_validator_rejects_decreasing_buckets():
    text = (
        "# TYPE lat histogram\n"
        'lat_bucket{le="0.1"} 5\n'
        'lat_bucket{le="1"} 3\n'
        'lat_bucket{le="+Inf"} 5\n'
        "lat_sum 1\n"
        "lat_count 5\n"
        "# EOF\n"
    )
    assert any("decreased" in p for p in validate_openmetrics(text))


def test_validator_rejects_nonincreasing_le_bounds():
    text = (
        "# TYPE lat histogram\n"
        'lat_bucket{le="1"} 1\n'
        'lat_bucket{le="0.5"} 2\n'
        'lat_bucket{le="+Inf"} 2\n'
        "lat_sum 1\n"
        "lat_count 2\n"
        "# EOF\n"
    )
    assert any("not increasing" in p for p in validate_openmetrics(text))


def test_validator_requires_inf_bucket_matching_count():
    no_inf = (
        "# TYPE lat histogram\n"
        'lat_bucket{le="1"} 1\n'
        "lat_sum 1\n"
        "lat_count 1\n"
        "# EOF\n"
    )
    assert any("+Inf" in p for p in validate_openmetrics(no_inf))
    mismatch = (
        "# TYPE lat histogram\n"
        'lat_bucket{le="+Inf"} 2\n'
        "lat_sum 1\n"
        "lat_count 3\n"
        "# EOF\n"
    )
    assert any("!=" in p for p in validate_openmetrics(mismatch))


def test_validator_rejects_interleaved_families():
    text = (
        "# TYPE a gauge\na 1\n"
        "# TYPE b gauge\nb 1\n"
        "a 2\n"
        "# EOF\n"
    )
    assert any("contiguous" in p for p in validate_openmetrics(text))


def test_validator_rejects_blank_lines_and_bad_values():
    assert any(
        "blank" in p
        for p in validate_openmetrics("# TYPE a gauge\n\na 1\n# EOF\n")
    )
    assert any(
        "unparseable value" in p
        for p in validate_openmetrics("# TYPE a gauge\na one\n# EOF\n")
    )


# ------------------------------------------------------------------- writer


def test_write_openmetrics_round_trip(tmp_path):
    path = str(tmp_path / "scrape.prom")
    text = render_openmetrics(_registry())
    assert write_openmetrics(path, text) == path
    assert open(path, encoding="utf-8").read() == text


def test_write_openmetrics_refuses_invalid_documents(tmp_path):
    path = tmp_path / "bad.prom"
    with pytest.raises(ValueError, match="invalid OpenMetrics"):
        write_openmetrics(str(path), "# TYPE a gauge\na 1\n")
    assert not path.exists()
