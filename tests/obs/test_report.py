"""The self-contained HTML run report."""

import pytest

from repro import quick_demo
from repro.obs import ObsConfig
from repro.obs.forensics import attribute_lateness
from repro.obs.report import render_report, write_report
from repro.workload import make_uniform_cluster


@pytest.fixture(scope="module")
def traced_run():
    """One traced quick-demo run shared across the module's tests."""
    tracer = ObsConfig(trace=True).make_tracer()
    metrics = quick_demo(seed=3, tracer=tracer)
    # quick_demo builds exactly this cluster internally
    resources = make_uniform_cluster(4, 2, 2)
    return metrics, resources, tracer.recorder.events


def test_report_is_self_contained(traced_run, tmp_path):
    metrics, resources, events = traced_run
    out = tmp_path / "report.html"
    write_report(str(out), metrics, resources=resources, events=events)
    html = out.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<script" not in html
    assert 'src="http' not in html and 'href="http' not in html
    assert "@import" not in html and "url(" not in html


def test_report_sections_render(traced_run):
    metrics, resources, events = traced_run
    html = render_report(metrics, resources=resources, events=events)
    assert html.count("<svg") >= 2  # Gantt + utilization
    assert "Cluster Gantt" in html
    assert "Utilization" in html
    assert "O · overhead/job" in html  # stat tiles
    # every task bar ships a native tooltip
    assert "<title>" in html


def test_metrics_only_report():
    """Only RunMetrics: tiles render, chart sections degrade gracefully."""
    metrics = quick_demo(seed=1)
    html = render_report(metrics)
    assert "O · overhead/job" in html
    assert "Cluster Gantt" not in html


def test_attribution_waterfall_renders(traced_run):
    metrics, resources, events = traced_run
    jobs_stub = []  # no late jobs in the happy-path demo run
    attributions = attribute_lateness(metrics, jobs_stub, events)
    html = render_report(
        metrics, resources=resources, events=events, attributions=attributions
    )
    assert "Why were the late jobs late?" in html
    if not attributions:
        assert "every deadline was met" in html


def test_title_is_escaped():
    metrics = quick_demo(seed=1)
    html = render_report(metrics, title='<script>alert("x")</script>')
    assert "<script>" not in html
    assert "&lt;script&gt;" in html


def test_dark_mode_palette_present(traced_run):
    metrics, _, _ = traced_run
    html = render_report(metrics)
    assert "prefers-color-scheme: dark" in html
    assert "--surface-1: #1a1a19" in html  # selected dark steps, not inverted
