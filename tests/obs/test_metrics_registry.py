"""MetricsRegistry: instruments, snapshots, and the null fast path."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)


def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    c = reg.counter("events")
    c.inc()
    c.inc(4)
    assert c.value == 5
    g = reg.gauge("depth")
    g.set(3.5)
    assert g.value == 3.5


def test_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.histogram("h") is reg.histogram("h")


def test_type_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("x")


def test_histogram_bucketing():
    h = Histogram("lat", boundaries=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    # buckets: <=0.1, <=1.0, <=10.0, overflow
    assert h.counts == [1, 2, 1, 1]
    assert h.count == 5
    assert h.total == pytest.approx(56.05)
    assert h.mean == pytest.approx(56.05 / 5)


def test_histogram_boundary_value_lands_in_its_bucket():
    h = Histogram("lat", boundaries=(1.0, 2.0))
    h.observe(1.0)  # bisect_left: exactly-on-boundary counts as <= boundary
    assert h.counts == [1, 0, 0]


def test_histogram_rejects_bad_boundaries():
    with pytest.raises(ValueError):
        Histogram("bad", boundaries=())
    with pytest.raises(ValueError):
        Histogram("bad", boundaries=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("bad", boundaries=(1.0, 1.0))


def test_default_buckets_are_strictly_increasing():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(set(DEFAULT_LATENCY_BUCKETS))


def test_as_dict_snapshot():
    reg = MetricsRegistry()
    reg.counter("b").inc(2)
    reg.gauge("a").set(1.0)
    reg.histogram("c", boundaries=(1.0,)).observe(0.5)
    snap = reg.as_dict()
    assert list(snap) == ["a", "b", "c"]  # sorted
    assert snap["a"] == 1.0
    assert snap["b"] == 2
    assert snap["c"] == {
        "boundaries": [1.0],
        "counts": [1, 0],
        "sum": 0.5,
        "count": 1,
    }


def test_null_registry_hands_out_shared_noops():
    reg = NullMetricsRegistry()
    c = reg.counter("anything")
    assert c is reg.counter("something-else")
    c.inc(100)
    assert c.value == 0
    g = reg.gauge("g")
    g.set(7.0)
    assert g.value == 0.0
    h = reg.histogram("h")
    h.observe(1.0)
    assert h.count == 0
    assert reg.as_dict() == {}
    assert reg.enabled is False
    assert MetricsRegistry().enabled is True


def test_histogram_empty_snapshot():
    h = Histogram("h", boundaries=(1.0,))
    assert h.as_dict() == {
        "boundaries": [1.0],
        "counts": [0, 0],
        "sum": 0.0,
        "count": 0,
    }
    assert h.mean == 0.0


def test_histogram_observation_beyond_last_boundary_overflows():
    h = Histogram("h", boundaries=(1.0, 2.0))
    h.observe(100.0)
    assert h.counts == [0, 0, 1]
    assert h.count == 1
    assert h.as_dict()["counts"] == [0, 0, 1]


def test_histogram_single_boundary_splits_on_it():
    h = Histogram("h", boundaries=(0.5,))
    h.observe(0.5)   # exactly on the boundary: its bucket
    h.observe(0.50001)  # just past it: overflow
    assert h.counts == [1, 1]


def test_null_registry_shares_instruments_across_names():
    # one inert cell per instrument kind, regardless of the name asked for
    assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
    assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")
    assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")
    NULL_REGISTRY.histogram("a").observe(1.0)
    assert NULL_REGISTRY.as_dict() == {}
    assert NULL_REGISTRY.instruments() == {}


def test_null_instruments_satisfy_real_types():
    # hot paths hold instruments unconditionally -- the null ones must be
    # substitutable for the real classes
    assert isinstance(NULL_REGISTRY.counter("x"), Counter)
    assert isinstance(NULL_REGISTRY.gauge("x"), Gauge)
    assert isinstance(NULL_REGISTRY.histogram("x"), Histogram)
