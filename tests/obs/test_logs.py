"""Structured logging helpers: namespacing, kv formatting, configuration."""

import io
import logging

import pytest

from repro.obs.logs import configure_logging, get_logger, kv


def _flagged_handlers():
    root = logging.getLogger("repro")
    return [
        h for h in root.handlers if getattr(h, "_repro_obs_handler", False)
    ]


def _cleanup():
    root = logging.getLogger("repro")
    for handler in _flagged_handlers():
        root.removeHandler(handler)


def test_get_logger_prefixes_repro_namespace():
    assert get_logger("core.executor").name == "repro.core.executor"


def test_kv_preserves_keyword_order():
    line = kv(b=1, a="x")
    assert line == "b=1 a=x"


def test_kv_floats_are_compact():
    assert kv(t=0.123456789) == "t=0.123457"
    assert kv(t=1500.0) == "t=1500"


def test_kv_quotes_strings_with_spaces():
    assert kv(msg="two words") == "msg='two words'"


def test_configure_logging_is_idempotent():
    try:
        configure_logging("info")
        configure_logging("debug")
        handlers = _flagged_handlers()
        assert len(handlers) == 1
        assert logging.getLogger("repro").level == logging.DEBUG
    finally:
        _cleanup()


def test_configure_logging_rejects_unknown_level():
    with pytest.raises(ValueError):
        configure_logging("loud")


def test_log_lines_reach_the_stream():
    stream = io.StringIO()
    try:
        configure_logging("info", stream=stream)
        get_logger("test").info("solve %s", kv(status="optimal", jobs=3))
        out = stream.getvalue()
        assert "repro.test" in out
        assert "solve status=optimal jobs=3" in out
    finally:
        _cleanup()
