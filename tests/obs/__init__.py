"""Tests for the observability package (tracing, metrics, logging)."""
