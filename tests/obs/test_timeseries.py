"""Telemetry sampler: cadence, ring buffer, null path, JSONL round trip."""

import json

import pytest

from repro.obs.timeseries import (
    NULL_SAMPLER,
    QUARANTINED_KEYS,
    SERIES_SCHEMA,
    NullTimeSeriesSampler,
    SeriesStore,
    TelemetryConfig,
    TimeSeriesSampler,
    read_series_jsonl,
)
from repro.sim.kernel import Simulator


def _sampler(**kw):
    kw.setdefault("enabled", True)
    return TimeSeriesSampler(TelemetryConfig(**kw))


# ------------------------------------------------------------------- config


def test_config_rejects_bad_interval_and_capacity():
    with pytest.raises(ValueError, match="interval"):
        TelemetryConfig(interval=0.0).validate()
    with pytest.raises(ValueError, match="interval"):
        TelemetryConfig(interval=-1.0).validate()
    with pytest.raises(ValueError, match="capacity"):
        TelemetryConfig(capacity=0).validate()


def test_sampler_validates_config_on_construction():
    with pytest.raises(ValueError):
        TimeSeriesSampler(TelemetryConfig(enabled=True, interval=-5.0))


# -------------------------------------------------------------------- store


def test_series_store_is_a_ring_buffer():
    store = SeriesStore(capacity=3)
    assert store.last is None
    for i in range(5):
        store.append({"seq": i})
    assert len(store) == 3
    assert store.total == 5
    assert store.dropped == 2
    assert [s["seq"] for s in store.samples] == [2, 3, 4]
    assert store.last == {"seq": 4}


def test_series_store_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        SeriesStore(0)


# ------------------------------------------------------------------ cadence


def test_sampling_cadence_is_grid_aligned_and_drains():
    """Samples land at multiples of the interval, then the run drains."""
    sim = Simulator()
    for t in (3.0, 7.0, 12.0):
        sim.schedule_at(t, lambda: None)
    sampler = _sampler(interval=5.0)
    sampler.attach(sim)
    sampler.start()
    sim.run()
    final = sampler.finalize()
    times = [s["sim_time"] for s in sampler.store.samples]
    # opening sample, ticks at 5/10, one trailing tick at 15, closing sample
    assert times == [0.0, 5.0, 10.0, 15.0, 15.0]
    assert [s["final"] for s in sampler.store.samples] == [
        False, False, False, False, True,
    ]
    assert [s["seq"] for s in sampler.store.samples] == [0, 1, 2, 3, 4]
    assert final is sampler.store.last


def test_sampler_never_keeps_the_calendar_alive():
    """With no real work pending, start() takes one sample and stops."""
    sim = Simulator()
    sampler = _sampler(interval=1.0)
    sampler.attach(sim)
    sampler.start()
    assert sim.peek() is None  # nothing armed on an empty calendar
    assert len(sampler.store) == 1


def test_start_requires_attach():
    with pytest.raises(RuntimeError, match="attach"):
        _sampler().start()


def test_probes_and_listeners_fire_per_sample():
    sim = Simulator()
    sampler = _sampler()
    sampler.attach(sim)
    sampler.add_probe("z.second", lambda: 2.0)
    sampler.add_probe("a.first", lambda: 1.0)
    seen = []
    sampler.add_listener(seen.append)
    record = sampler.sample()
    # probes are read in sorted-name order and land under "probes"
    assert record["probes"] == {"a.first": 1.0, "z.second": 2.0}
    assert seen == [record]


# ---------------------------------------------------------------- null path


def test_null_sampler_is_inert():
    assert NULL_SAMPLER.enabled is False
    assert isinstance(NULL_SAMPLER, NullTimeSeriesSampler)
    NULL_SAMPLER.attach(None)
    NULL_SAMPLER.add_probe("x", lambda: 1.0)
    NULL_SAMPLER.add_listener(lambda s: None)
    NULL_SAMPLER.start()
    assert NULL_SAMPLER.sample() == {}
    assert NULL_SAMPLER.finalize() is None
    assert len(NULL_SAMPLER.store) == 0


def test_null_sampler_refuses_to_write():
    with pytest.raises(RuntimeError, match="disabled"):
        NULL_SAMPLER.write_series("/tmp/never-written.jsonl")


# ------------------------------------------------------------------- output


def _run_tiny(sampler):
    sim = Simulator()
    sim.schedule_at(4.0, lambda: None)
    sampler.attach(sim)
    sampler.start()
    sim.run()
    sampler.finalize()


def test_write_series_round_trips_and_quarantines_wall(tmp_path):
    sampler = _sampler(interval=2.0, wall_clock=lambda: 123.0)
    _run_tiny(sampler)
    assert sampler.store.last["wall"] == 123.0
    path = str(tmp_path / "series.jsonl")
    assert sampler.write_series(path) == path
    meta, samples = read_series_jsonl(path)
    assert meta["schema"] == SERIES_SCHEMA
    assert meta["interval"] == 2.0
    assert meta["samples"] == len(sampler.store) == len(samples)
    assert meta["dropped"] == 0
    for row in samples:
        assert not QUARANTINED_KEYS & row.keys()
    assert samples[-1]["final"] is True


def test_write_series_can_include_wall(tmp_path):
    sampler = _sampler(interval=2.0, include_wall=True,
                       wall_clock=lambda: 9.5)
    _run_tiny(sampler)
    _, samples = read_series_jsonl(sampler.write_series(
        str(tmp_path / "series.jsonl")))
    assert all(row["wall"] == 9.5 for row in samples)


def test_write_series_lines_are_sorted_key_json(tmp_path):
    sampler = _sampler(interval=2.0)
    _run_tiny(sampler)
    path = sampler.write_series(str(tmp_path / "series.jsonl"))
    for line in open(path, encoding="utf-8").read().splitlines():
        assert line == json.dumps(json.loads(line), sort_keys=True)


def test_read_series_rejects_empty_and_wrong_schema(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_series_jsonl(str(empty))
    bad = tmp_path / "bad.jsonl"
    bad.write_text(json.dumps({"schema": "other/9"}) + "\n")
    with pytest.raises(ValueError, match="schema"):
        read_series_jsonl(str(bad))


def test_read_series_rejects_non_json_meta_line(tmp_path):
    bad = tmp_path / "garbage.jsonl"
    bad.write_text("not json at all\n")
    with pytest.raises(ValueError, match="non-JSON meta line"):
        read_series_jsonl(str(bad))


def test_read_series_rejects_non_object_meta_line(tmp_path):
    bad = tmp_path / "list.jsonl"
    bad.write_text("[1, 2, 3]\n")
    with pytest.raises(ValueError, match="not an object"):
        read_series_jsonl(str(bad))


def test_read_series_rejects_missing_schema_marker(tmp_path):
    bad = tmp_path / "nomarker.jsonl"
    bad.write_text(json.dumps({"interval": 5.0}) + "\n")
    with pytest.raises(ValueError, match="no 'schema' marker"):
        read_series_jsonl(str(bad))


def test_read_series_error_names_the_expected_schema(tmp_path):
    bad = tmp_path / "future.jsonl"
    bad.write_text(json.dumps({"schema": "repro-telemetry/99"}) + "\n")
    with pytest.raises(ValueError, match="repro-telemetry/1"):
        read_series_jsonl(str(bad))


def test_read_series_rejects_corrupt_sample_line(tmp_path):
    bad = tmp_path / "torn.jsonl"
    bad.write_text(
        json.dumps({"schema": SERIES_SCHEMA}) + "\n" + '{"seq": 0, "tru'
    )
    with pytest.raises(ValueError, match="corrupt sample line"):
        read_series_jsonl(str(bad))
