"""SLO burn-rate monitor: spec validation, tripping, edge-triggering."""

import json

import pytest

from repro.obs.slo import (
    DEFAULT_WINDOWS,
    KINDS,
    BurnWindow,
    SloMonitor,
    SloSpec,
    default_slos,
)
from repro.obs.trace import Tracer


def _clock():
    """A constant wall clock for the monitor's tracer."""
    return 0.0


def _monitor(*specs, tracer=None):
    return SloMonitor(specs, tracer=tracer)


def _late_spec(budget=0.10, windows=None):
    if windows is None:
        windows = (BurnWindow(long_window=10.0, short_window=5.0, factor=1.0),)
    return SloSpec(name="late", kind="late_jobs", budget=budget,
                   windows=windows)


def _sample(t, completed, late):
    return {"sim_time": t, "jobs_completed": completed, "N": late}


# --------------------------------------------------------------- validation


def test_burn_window_validation():
    with pytest.raises(ValueError, match="positive"):
        BurnWindow(long_window=0.0, short_window=1.0, factor=1.0).validate()
    with pytest.raises(ValueError, match="short window exceeds"):
        BurnWindow(long_window=5.0, short_window=10.0, factor=1.0).validate()
    with pytest.raises(ValueError, match="factor"):
        BurnWindow(long_window=10.0, short_window=5.0, factor=0.0).validate()


def test_spec_validation():
    with pytest.raises(ValueError, match="unknown SLO kind"):
        SloSpec(name="x", kind="nope", budget=0.1).validate()
    with pytest.raises(ValueError, match="budget"):
        SloSpec(name="x", kind="late_jobs", budget=0.0).validate()
    with pytest.raises(ValueError, match="budget"):
        SloSpec(name="x", kind="late_jobs", budget=1.5).validate()
    with pytest.raises(ValueError, match="no burn windows"):
        SloSpec(name="x", kind="late_jobs", budget=0.1,
                windows=()).validate()


def test_monitor_validates_specs_up_front():
    with pytest.raises(ValueError):
        _monitor(SloSpec(name="x", kind="nope", budget=0.1))


def test_default_slos_are_valid_and_cover_all_kinds():
    specs = default_slos()
    for spec in specs:
        spec.validate()
    assert sorted(s.kind for s in specs) == sorted(KINDS)
    for window in DEFAULT_WINDOWS:
        window.validate()


# ----------------------------------------------------------------- tripping


def test_first_sample_never_trips():
    # a single history point yields zero window deltas -- no division, no
    # alert, however bad the ratio looks
    monitor = _monitor(_late_spec())
    assert monitor.observe(_sample(0.0, completed=10, late=10)) == []
    assert monitor.alerts == []


def test_burn_rate_fires_then_resolves_edge_triggered():
    monitor = _monitor(_late_spec())
    monitor.observe(_sample(0.0, completed=0, late=0))
    # 5 of 10 completions late: burn = (5/10)/0.10 = 5x >= factor 1
    fired = monitor.observe(_sample(5.0, completed=10, late=5))
    assert [a.state for a in fired] == ["fired"]
    assert fired[0].name == "late" and fired[0].kind == "late_jobs"
    assert fired[0].burn_long == pytest.approx(5.0)
    assert fired[0].bad == 5.0 and fired[0].total == 10.0
    assert fired[0].long_window == 10.0 and fired[0].short_window == 5.0
    # still burning: no duplicate transition while the alert stays active
    assert monitor.observe(_sample(7.0, completed=12, late=6)) == []
    # recovery: the short window goes clean, the alert resolves once
    resolved = monitor.observe(_sample(15.0, completed=40, late=6))
    assert [a.state for a in resolved] == ["resolved"]
    assert [a.state for a in monitor.alerts] == ["fired", "resolved"]
    assert [a.state for a in monitor.fired] == ["fired"]


def test_both_windows_must_trip():
    # long window still carries the old burst, but the short window is
    # clean -- the recency gate keeps the alert quiet
    monitor = _monitor(_late_spec())
    monitor.observe(_sample(0.0, completed=0, late=0))
    monitor.observe(_sample(2.0, completed=10, late=5))  # fires
    monitor.observe(_sample(9.0, completed=40, late=5))  # resolves
    # long window (10s) spans the burst: (5/40)/0.1 = 1.25 >= 1, but the
    # short window (5s) saw only clean completions
    transitions = monitor.observe(_sample(10.0, completed=44, late=5))
    assert transitions == []


def test_slow_invocations_need_boundaries():
    spec = SloSpec(
        name="p99", kind="slow_invocations", budget=0.5, threshold=0.5,
        windows=(BurnWindow(long_window=10.0, short_window=5.0, factor=1.0),),
    )
    monitor = _monitor(spec)
    # without bucket boundaries the kind cannot be evaluated
    sample = {"sim_time": 0.0, "overhead_buckets": [1, 1, 2]}
    assert monitor.observe(sample) == []
    monitor.set_overhead_boundaries((0.5, 1.0))
    monitor.observe({"sim_time": 1.0, "overhead_buckets": [2, 0, 0]})
    # buckets above the 0.5s threshold (le=1.0 and overflow) are "bad":
    # delta bad 3, delta total 4 -> burn (3/4)/0.5 = 1.5x in both windows
    fired = monitor.observe({"sim_time": 2.0, "overhead_buckets": [3, 2, 1]})
    assert [a.state for a in fired] == ["fired"]
    assert fired[0].bad == 3.0 and fired[0].total == 4.0


def test_degraded_solves_reads_rung_counters():
    spec = SloSpec(
        name="rungs", kind="degraded_solves", budget=0.25,
        windows=(BurnWindow(long_window=10.0, short_window=5.0, factor=1.0),),
    )
    monitor = _monitor(spec)
    monitor.observe({"sim_time": 0.0, "counters": {}})
    fired = monitor.observe({
        "sim_time": 5.0,
        "counters": {
            "resilience.rung_used.cp_full": 1,
            "resilience.rung_used.greedy": 3,
            "unrelated.counter": 99,
        },
    })
    assert [a.state for a in fired] == ["fired"]
    assert fired[0].bad == 3.0 and fired[0].total == 4.0


def test_samples_missing_inputs_are_skipped():
    monitor = _monitor(_late_spec())
    assert monitor.observe({"sim_time": 0.0}) == []
    assert monitor.alerts == []


# --------------------------------------------------------------- reporting


def test_fired_alerts_count_into_the_registry():
    from repro.obs.metrics import MetricsRegistry

    tracer = Tracer(None, wall_clock=_clock, registry=MetricsRegistry())
    monitor = _monitor(_late_spec(), tracer=tracer)
    monitor.observe(_sample(0.0, completed=0, late=0))
    monitor.observe(_sample(5.0, completed=10, late=5))
    snap = tracer.registry.as_dict()
    assert snap["slo.alerts_fired"] == 1
    assert snap["slo.alert.late"] == 1


def test_write_alerts_jsonl_round_trip(tmp_path):
    monitor = _monitor(_late_spec())
    monitor.observe(_sample(0.0, completed=0, late=0))
    monitor.observe(_sample(5.0, completed=10, late=5))
    path = str(tmp_path / "alerts.jsonl")
    assert monitor.write_alerts(path) == path
    lines = open(path, encoding="utf-8").read().splitlines()
    assert len(lines) == 1
    row = json.loads(lines[0])
    assert row == monitor.alerts[0].as_dict()
    assert lines[0] == json.dumps(row, sort_keys=True)


def test_write_alerts_empty_monitor_writes_empty_file(tmp_path):
    path = str(tmp_path / "alerts.jsonl")
    _monitor(_late_spec()).write_alerts(path)
    assert open(path, encoding="utf-8").read() == ""


def test_subscribe_ignores_disabled_samplers():
    from repro.obs.timeseries import NULL_SAMPLER

    monitor = _monitor(_late_spec())
    monitor.subscribe(NULL_SAMPLER)  # must not register a listener
    assert NULL_SAMPLER.sample() == {}
    assert monitor.alerts == []
