"""Strict Chrome trace-event conformance: validator unit tests + real runs."""

import json

from repro import quick_demo
from repro.obs import ObsConfig
from repro.obs.conformance import (
    INSTANT_SCOPES,
    VALID_PHASES,
    validate_trace_document,
    validate_trace_events,
)


def _span(name="work", ts=0, dur=10, pid=1, tid=1, **extra):
    ev = {"name": name, "ph": "X", "ts": ts, "dur": dur, "pid": pid, "tid": tid}
    ev.update(extra)
    return ev


# ---------------------------------------------------------------------------
# Validator unit tests
# ---------------------------------------------------------------------------


def test_valid_events_pass():
    events = [
        {"name": "meta", "ph": "M", "pid": 1, "tid": 1,
         "args": {"name": "wall"}},
        _span(),
        {"name": "mark", "ph": "i", "ts": 5, "s": "g", "pid": 1, "tid": 1},
        {"name": "ctr", "ph": "C", "ts": 5, "pid": 1, "tid": 1,
         "args": {"v": 1}},
    ]
    assert validate_trace_events(events) == []


def test_float_ts_rejected():
    problems = validate_trace_events([_span(ts=1.5)])
    assert any("ts" in p and "not an int" in p for p in problems)


def test_float_dur_rejected():
    problems = validate_trace_events([_span(dur=2.25)])
    assert any("dur" in p and "not an int" in p for p in problems)


def test_negative_dur_rejected():
    problems = validate_trace_events([_span(dur=-1)])
    assert any("negative dur" in p for p in problems)


def test_bool_pid_rejected():
    """bool is an int subclass in Python; the spec wants genuine integers."""
    problems = validate_trace_events([_span(pid=True)])
    assert any("pid" in p for p in problems)


def test_invalid_phase_rejected():
    problems = validate_trace_events(
        [{"name": "x", "ph": "Z", "ts": 0, "pid": 1, "tid": 1}]
    )
    assert any("invalid ph" in p for p in problems)
    assert "Z" not in VALID_PHASES


def test_instant_scope_checked():
    bad = {"name": "x", "ph": "i", "ts": 0, "s": "q", "pid": 1, "tid": 1}
    assert any("scope" in p for p in validate_trace_events([bad]))
    assert "q" not in INSTANT_SCOPES


def test_missing_name_rejected():
    problems = validate_trace_events([{"ph": "X", "ts": 0, "dur": 1}])
    assert any("name" in p for p in problems)


def test_begin_end_nesting_enforced():
    b = {"name": "outer", "ph": "B", "ts": 0, "pid": 1, "tid": 1}
    e = {"name": "outer", "ph": "E", "ts": 5, "pid": 1, "tid": 1}
    assert validate_trace_events([b, e]) == []
    # E without B
    problems = validate_trace_events([e])
    assert any("E without matching B" in p for p in problems)
    # unclosed B
    problems = validate_trace_events([b])
    assert any("unclosed B" in p for p in problems)
    # nesting is tracked per (pid, tid): an E on another tid doesn't close it
    other = {"name": "outer", "ph": "E", "ts": 5, "pid": 1, "tid": 2}
    problems = validate_trace_events([b, other])
    assert len(problems) == 2


def test_unserialisable_args_rejected():
    bad = _span(args={"obj": object()})
    assert any(
        "not serialisable" in p for p in validate_trace_events([bad])
    )


def test_document_validation(tmp_path):
    assert validate_trace_document({}) == ["document has no traceEvents array"]
    assert validate_trace_document({"traceEvents": [_span()]}) == []


# ---------------------------------------------------------------------------
# Real runs must conform
# ---------------------------------------------------------------------------


def test_real_run_trace_is_conformant():
    tracer = ObsConfig(trace=True).make_tracer()
    quick_demo(seed=3, tracer=tracer)
    events = tracer.recorder.events
    assert events
    assert validate_trace_events(events) == []
    # the headline int64 requirements, asserted directly as well
    for ev in events:
        if "ts" in ev:
            assert isinstance(ev["ts"], int) and not isinstance(ev["ts"], bool)
        if ev.get("ph") == "X":
            assert isinstance(ev["dur"], int)
        for key in ("pid", "tid"):
            if key in ev:
                assert isinstance(ev[key], int)


def test_written_trace_file_is_conformant(tmp_path):
    out = tmp_path / "trace.json"
    tracer = ObsConfig(trace_out=str(out)).make_tracer()
    quick_demo(seed=5, tracer=tracer)
    tracer.write(str(out))
    doc = json.loads(out.read_text())
    assert validate_trace_document(doc) == []
