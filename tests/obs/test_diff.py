"""Run-diff engine: pure units (no simulation runs; see the integration
suite for the end-to-end capture/diff/bisect acceptance tests)."""

import json

import pytest

from repro.obs.diff import (
    DiffError,
    align_events,
    canonicalize_events,
    delta_waterfalls,
    diff_series,
    diff_sweeps,
    first_divergent_plan,
    metrics_delta,
)
from repro.obs.trace import SIM_PID, WALL_PID

_US = 1_000_000


def _sim_event(name, t, **args):
    return {
        "name": name, "ph": "i", "s": "g", "pid": SIM_PID, "tid": 0,
        "ts": int(t * _US), "args": args,
    }


def _wall_event(name, ts, **args):
    return {
        "name": name, "ph": "X", "pid": WALL_PID, "tid": 0,
        "ts": ts, "dur": 7, "args": args,
    }


# ----------------------------------------------------------- canonicalize


def test_canonicalize_keeps_sim_timestamps_drops_wall_ones():
    canon, times = canonicalize_events(
        [_sim_event("task.start", 5.0, job=1), _wall_event("solve", 123)]
    )
    assert canon[0]["ts"] == 5 * _US
    assert "ts" not in canon[1] and "dur" not in canon[1]
    assert times == [5.0, None]


def test_canonicalize_drops_metadata_and_snapshot_lines():
    canon, _ = canonicalize_events(
        [
            {"name": "process_name", "ph": "M", "pid": 1, "args": {}},
            {"name": "metrics.snapshot", "counters": {}},
            _sim_event("keep", 1.0),
        ]
    )
    assert [e["name"] for e in canon] == ["keep"]


def test_canonicalize_quarantines_wall_args_but_keeps_the_rest():
    canon, _ = canonicalize_events(
        [_wall_event("scheduler.invocation", 9, overhead=0.123, trigger="arrival")]
    )
    assert canon[0]["args"] == {"trigger": "arrival"}


def test_canonicalize_reads_sim_time_from_wall_event_args():
    _, times = canonicalize_events(
        [_wall_event("scheduler.invocation", 5, sim_time=42.0)]
    )
    assert times == [42.0]


# ------------------------------------------------------------------ align


def test_align_identical_streams_has_no_divergence():
    events = [_sim_event("a", 1.0), _sim_event("b", 2.0)]
    alignment = align_events(events, list(events))
    assert alignment.identical
    assert alignment.first_divergence is None
    assert alignment.matched == 2 and alignment.only_a == 0


def test_align_wall_jitter_is_not_divergence():
    a = [_wall_event("solve", 100, trigger="arrival"), _sim_event("x", 1.0)]
    b = [_wall_event("solve", 999, trigger="arrival"), _sim_event("x", 1.0)]
    assert align_events(a, b).identical


def test_align_localises_first_divergent_event():
    a = [_sim_event("a", 1.0), _sim_event("b", 2.0), _sim_event("c", 3.0)]
    b = [_sim_event("a", 1.0), _sim_event("B", 2.5), _sim_event("c", 3.0)]
    alignment = align_events(a, b)
    fd = alignment.first_divergence
    assert fd["index"] == 1
    assert fd["sim_time"] == 2.0  # min of the two diverging instants
    assert fd["a"]["name"] == "b" and fd["b"]["name"] == "B"
    assert alignment.matched == 2  # a and c still align across the fork


def test_align_prefix_stream_diverges_at_the_truncation():
    a = [_sim_event("a", 1.0), _sim_event("b", 2.0)]
    alignment = align_events(a, a[:1])
    fd = alignment.first_divergence
    assert fd["index"] == 1 and fd["b"] is None
    assert fd["sim_time"] == 2.0


def test_align_reports_conformance_problems_per_side():
    bad = [{"name": "x", "ph": "X", "pid": SIM_PID, "ts": 0}]  # no dur
    problems = align_events(bad, []).problems
    assert any(p.startswith("a:") for p in problems)


# ------------------------------------------------------------- waterfalls


def _row(job_id, tardiness, contention=0, solver=0, fault=0, residual=None):
    if residual is None:
        residual = tardiness - contention - solver - fault
    return {
        "job_id": job_id,
        "tardiness_us": tardiness,
        "contention_us": contention,
        "solver_us": solver,
        "fault_us": fault,
        "residual_us": residual,
    }


def test_delta_waterfalls_sum_exactly_to_the_tardiness_delta():
    a = [_row(1, 10 * _US, contention=4 * _US), _row(2, 5 * _US)]
    b = [_row(1, 17 * _US, contention=9 * _US), _row(2, 5 * _US)]
    [entry] = delta_waterfalls(a, b)  # job 2 unchanged -> omitted
    assert entry["job_id"] == 1
    assert entry["delta_us"] == 7 * _US
    assert sum(entry["components_us"].values()) == entry["delta_us"]
    assert entry["components_us"]["contention"] == 5 * _US
    assert entry["direction"] == "later"


def test_delta_waterfalls_appeared_and_disappeared_jobs():
    entries = delta_waterfalls([_row(1, 3 * _US)], [_row(2, 4 * _US)])
    by_id = {e["job_id"]: e for e in entries}
    assert by_id[1]["direction"] == "disappeared"
    assert by_id[1]["delta_us"] == -3 * _US
    assert by_id[2]["direction"] == "appeared"
    assert by_id[2]["delta_us"] == 4 * _US
    for e in entries:
        assert sum(e["components_us"].values()) == e["delta_us"]


def test_delta_waterfalls_shifted_composition_same_total():
    a = [_row(1, 10 * _US, contention=8 * _US)]
    b = [_row(1, 10 * _US, solver=8 * _US)]
    [entry] = delta_waterfalls(a, b)
    assert entry["delta_us"] == 0 and entry["direction"] == "shifted"
    assert entry["components_us"]["contention"] == -8 * _US
    assert entry["components_us"]["solver"] == 8 * _US


# ----------------------------------------------------------------- series


def test_diff_series_aligns_by_sim_time_and_finds_first_divergence():
    a = [
        {"sim_time": 0.0, "N": 0, "probes": {"q": 1.0}},
        {"sim_time": 5.0, "N": 1, "probes": {"q": 2.0}},
        {"sim_time": 10.0, "N": 1, "probes": {"q": 2.0}},
    ]
    b = [
        {"sim_time": 0.0, "N": 0, "probes": {"q": 1.0}},
        {"sim_time": 5.0, "N": 2, "probes": {"q": 5.0}},
    ]
    result = diff_series(a, b)
    assert result["aligned"] == 2 and result["only_a"] == 1
    assert result["changed"]["N"]["first_divergence_t"] == 5.0
    assert result["changed"]["probes.q"]["max_abs_delta"] == 3.0
    assert [p[0] for p in result["overlays"]["N"]] == [0.0, 5.0]


def test_diff_series_identical_reports_nothing_changed():
    samples = [{"sim_time": 0.0, "N": 0}, {"sim_time": 5.0, "N": 2}]
    result = diff_series(samples, list(samples))
    assert result["changed"] == {} and result["overlays"] == {}


# ---------------------------------------------------------------- metrics


def test_metrics_delta_union_and_missing_sides():
    out = metrics_delta({"O": 1.0, "N": 2.0}, {"N": 3.0, "T": 9.0})
    assert out["N"] == {"a": 2.0, "b": 3.0, "delta": 1.0}
    assert out["O"]["b"] is None and out["O"]["delta"] is None
    assert out["T"]["a"] is None


# ------------------------------------------------------------------ plans


def _plan(t, outcome="feasible", overhead=0.1, trigger="arrival",
          rung="cp_full", starts=None):
    return {
        "t": t, "outcome": outcome, "overhead": overhead,
        "trigger": trigger, "rung": rung,
        "planned_starts": starts or {"1": t + 1.0},
    }


def test_first_divergent_plan_ignores_overhead_jitter():
    a = [_plan(0.0, overhead=0.10), _plan(5.0, overhead=0.20)]
    b = [_plan(0.0, overhead=0.11), _plan(5.0, overhead=0.19)]
    assert first_divergent_plan(a, b) is None


def test_first_divergent_plan_pins_index_and_sim_time():
    a = [_plan(0.0), _plan(5.0, starts={"1": 6.0}), _plan(9.0)]
    b = [_plan(0.0), _plan(5.0, starts={"1": 7.5}), _plan(9.0)]
    hit = first_divergent_plan(a, b)
    assert hit["index"] == 1 and hit["sim_time"] == 5.0
    assert hit["changed"][0]["path"] == "planned_starts.1"


def test_first_divergent_plan_rung_change_is_divergence():
    a = [_plan(0.0, rung="cp_full")]
    b = [_plan(0.0, rung="greedy")]
    assert first_divergent_plan(a, b)["changed"][0]["path"] == "rung"


def test_first_divergent_plan_length_mismatch():
    a = [_plan(0.0)]
    b = [_plan(0.0), _plan(4.0)]
    hit = first_divergent_plan(a, b)
    assert hit["index"] == 1 and hit["sim_time"] == 4.0
    assert hit["a"] is None and hit["changed"][0]["kind"] == "length"


# ------------------------------------------------------------------ sweeps


def _sweep_doc(n_cells, metrics_of=None):
    metrics_of = metrics_of or {}
    return {
        "schema": "repro-sweep/1",
        "sweep": {"name": "fig7"},
        "cells": [
            {
                "index": i,
                "label": f"cell{i}",
                "replication": 0,
                "seed": i,
                "status": "ok",
                "metrics": metrics_of.get(i, {"N": 1.0}),
                "counts": {"jobs": 4},
            }
            for i in range(n_cells)
        ],
        "summary": {"cfg": {"N": 1.0}},
    }


def test_diff_sweeps_identical(tmp_path):
    pa, pb = tmp_path / "a.json", tmp_path / "b.json"
    pa.write_text(json.dumps(_sweep_doc(3)))
    pb.write_text(json.dumps(_sweep_doc(3)))
    doc = diff_sweeps(str(pa), str(pb))
    assert doc["verdict"] == "identical"
    assert doc["cells_divergent"] == 0 and doc["cells_total"] == 3
    assert all(c["verdict"] == "identical" for c in doc["cells"])


def test_diff_sweeps_per_cell_verdicts_and_unpaired(tmp_path):
    pa, pb = tmp_path / "a.json", tmp_path / "b.json"
    pa.write_text(json.dumps(_sweep_doc(3)))
    pb.write_text(json.dumps(_sweep_doc(2, metrics_of={1: {"N": 2.0}})))
    doc = diff_sweeps(str(pa), str(pb))
    assert doc["verdict"] == "divergent"
    verdicts = {c["index"]: c["verdict"] for c in doc["cells"]}
    assert verdicts == {0: "identical", 1: "divergent", 2: "only_in_a"}
    changed = {c["index"]: c["changed"] for c in doc["cells"]}
    assert changed[1][0]["path"] == "metrics.N"
    assert doc["cells_divergent"] == 2


def test_diff_sweeps_rejects_wrong_schema(tmp_path):
    pa = tmp_path / "a.json"
    pa.write_text(json.dumps({"schema": "other/1"}))
    with pytest.raises(DiffError, match="schema"):
        diff_sweeps(str(pa), str(pa))
