"""Table 1 model construction from system state."""

import pytest

from repro.core.formulation import FormulationMode, build_model
from repro.core.schedule import SchedulingError, TaskAssignment
from repro.workload.entities import Resource

from tests.conftest import make_job


def _resources():
    return [Resource(0, 2, 1), Resource(1, 2, 1)]


def test_combined_model_structure():
    jobs = [make_job(0, (5, 5), (3,), deadline=60),
            make_job(1, (4,), deadline=40)]
    result = build_model(jobs, _resources(), now=0)
    m = result.model
    assert result.mode is FormulationMode.COMBINED
    # 3 maps + 1 reduce = 4 intervals, no options
    assert len(m.intervals) == 4
    assert len(m.optionals) == 0
    # two cumulative constraints: combined map (cap 4), combined reduce (cap 2)
    caps = {c.name: c.capacity for c in m.cumulatives}
    assert caps == {"combined-map": 4, "combined-reduce": 2}
    # one barrier (job 1 is map-only), two indicators, two groups
    assert len(m.barriers) == 1
    assert len(m.indicators) == 2
    assert len(m.groups) == 2
    assert m.objective_bools is not None and len(m.objective_bools) == 2


def test_map_only_job_indicator_uses_maps():
    jobs = [make_job(0, (5,), deadline=40)]
    result = build_model(jobs, _resources(), now=0)
    spec = result.model.indicators[0]
    assert spec.tasks == [result.interval_of[jobs[0].map_tasks[0].id]]


def test_completed_tasks_omitted():
    job = make_job(0, (5, 5), (3,), deadline=60)
    job.map_tasks[0].is_completed = True
    result = build_model([job], _resources(), now=10)
    assert job.map_tasks[0].id not in result.interval_of
    assert job.map_tasks[1].id in result.interval_of


def test_est_clamped_to_now():
    job = make_job(0, (5,), earliest_start=3, deadline=60)
    result = build_model([job], _resources(), now=10)
    iv = result.interval_of[job.map_tasks[0].id]
    assert iv.est == 10


def test_future_est_respected():
    job = make_job(0, (5,), arrival=0, earliest_start=30, deadline=90)
    result = build_model([job], _resources(), now=10)
    iv = result.interval_of[job.map_tasks[0].id]
    assert iv.est == 30


def test_running_tasks_frozen():
    job = make_job(0, (5, 5), deadline=60)
    running = [TaskAssignment(job.map_tasks[0], 0, 0, start=2)]
    result = build_model([job], _resources(), now=4, running=running)
    iv = result.interval_of[job.map_tasks[0].id]
    assert iv.est == iv.lst == 2  # frozen, even though start < now
    assert result.frozen == {job.map_tasks[0].id: running[0]}


def test_orphan_frozen_tasks_consume_capacity_combined():
    """A running task of a job NOT being re-planned still blocks slots."""
    other = make_job(9, (8,), deadline=100)
    running = [TaskAssignment(other.map_tasks[0], 0, 0, start=0)]
    new_job = make_job(0, (5,), deadline=50)
    result = build_model([new_job], _resources(), now=1, running=running)
    # the orphan interval must appear in the combined-map cumulative
    cum = next(c for c in result.model.cumulatives if c.name == "combined-map")
    assert result.interval_of[other.map_tasks[0].id] in cum.intervals


def test_joint_model_structure():
    jobs = [make_job(0, (5,), (3,), deadline=60)]
    result = build_model(jobs, _resources(), now=0, mode=FormulationMode.JOINT)
    m = result.model
    # each task gets one option per eligible resource
    assert len(m.alternatives) == 2
    assert len(m.optionals) == 4  # 2 tasks x 2 resources
    # per-resource cumulatives: 2 map pools + 2 reduce pools
    assert len(m.cumulatives) == 4
    # every option maps back to a resource id
    assert set(result.resource_of_option.values()) == {0, 1}


def test_joint_frozen_task_single_option():
    job = make_job(0, (5, 5), deadline=60)
    running = [TaskAssignment(job.map_tasks[0], 1, 0, start=0)]
    result = build_model(
        [job], _resources(), now=2, running=running, mode=FormulationMode.JOINT
    )
    alt = next(
        a
        for a in result.model.alternatives
        if a.master is result.interval_of[job.map_tasks[0].id]
    )
    assert len(alt.options) == 1
    assert result.resource_of_option[alt.options[0]] == 1


def test_joint_skips_resources_without_slots():
    job = make_job(0, (5,), (3,), deadline=60)
    resources = [Resource(0, 2, 0), Resource(1, 0, 1)]
    result = build_model([job], resources, now=0, mode=FormulationMode.JOINT)
    red_alt = next(
        a
        for a in result.model.alternatives
        if a.master is result.interval_of[job.reduce_tasks[0].id]
    )
    assert [result.resource_of_option[o] for o in red_alt.options] == [1]


def test_no_resources_rejected():
    with pytest.raises(SchedulingError):
        build_model([make_job(0)], [], now=0)


def test_map_tasks_with_no_map_slots_rejected():
    jobs = [make_job(0, (5,), deadline=60)]
    with pytest.raises(SchedulingError):
        build_model(jobs, [Resource(0, 0, 2)], now=0)


def test_horizon_accommodates_everything():
    jobs = [make_job(0, (50, 50), (100,), earliest_start=1000, deadline=5000)]
    result = build_model(jobs, _resources(), now=0)
    assert result.horizon > 1000 + 200
    # every interval window fits under the horizon
    for iv in result.model.intervals:
        assert iv.lct <= result.horizon
