"""Non-uniform clusters through both formulation modes."""

import pytest

from repro.core import MrcpRm, MrcpRmConfig
from repro.core.formulation import FormulationMode
from repro.cp.solver import SolverParams
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload import make_heterogeneous_cluster

from tests.conftest import make_job


#: map-only node, reduce-only node, mixed node.
SPEC = [(4, 0), (0, 4), (2, 2)]


def _run(jobs, mode):
    resources = make_heterogeneous_cluster(SPEC)
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim, resources,
        MrcpRmConfig(mode=mode, solver=SolverParams(time_limit=0.5)),
        metrics,
    )
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: rm.submit(j))
    sim.run()
    rm.executor.assert_quiescent()
    return metrics.finalize()


def test_helper_validates():
    cluster = make_heterogeneous_cluster(SPEC)
    assert [(r.map_capacity, r.reduce_capacity) for r in cluster] == SPEC
    with pytest.raises(ValueError):
        make_heterogeneous_cluster([])


@pytest.mark.parametrize(
    "mode", [FormulationMode.COMBINED, FormulationMode.JOINT]
)
def test_mixed_cluster_schedules_both_modes(mode):
    jobs = [
        make_job(i, (4, 4, 4), (6,), arrival=i * 3, earliest_start=i * 3,
                 deadline=500)
        for i in range(4)
    ]
    metrics = _run([j.copy() for j in jobs], mode)
    assert metrics.jobs_completed == 4
    assert metrics.late_jobs == 0


def test_reduce_only_node_never_gets_maps():
    """In joint mode the solver never offers map tasks to a node without
    map slots (formulation filters candidates)."""
    from repro.core.formulation import build_model
    from repro.workload.entities import TaskKind

    jobs = [make_job(0, (5, 5), (3,), deadline=500)]
    result = build_model(
        jobs, make_heterogeneous_cluster(SPEC), now=0,
        mode=FormulationMode.JOINT,
    )
    for option, rid in result.resource_of_option.items():
        task = result.task_of[
            next(a.master for a in result.model.alternatives if option in a.options)
        ]
        if task.kind is TaskKind.MAP:
            assert rid in (0, 2)  # nodes with map slots
        else:
            assert rid in (1, 2)  # nodes with reduce slots
