"""ASCII Gantt rendering."""

import pytest

from repro.core.executor import ScheduledExecutor
from repro.core.gantt import render_executor_plan, render_gantt
from repro.core.schedule import Schedule, TaskAssignment
from repro.sim import Simulator
from repro.workload.entities import Resource

from tests.conftest import make_job


def _schedule():
    job = make_job(0, (10, 5), (4,), deadline=100)
    s = Schedule()
    s.add(TaskAssignment(job.map_tasks[0], 0, 0, 0))
    s.add(TaskAssignment(job.map_tasks[1], 0, 1, 0))
    s.add(TaskAssignment(job.reduce_tasks[0], 0, 0, 10))
    return s, job


def test_empty_schedule():
    assert render_gantt(Schedule(), [Resource(0, 1, 1)]) == "(empty schedule)"


def test_rows_per_slot():
    s, _ = _schedule()
    out = render_gantt(s, [Resource(0, 2, 1)], width=28)
    lines = out.splitlines()
    # header + 3 slot rows + legend
    assert len(lines) == 5
    assert lines[1].strip().startswith("r0.map0")
    assert lines[2].strip().startswith("r0.map1")
    assert lines[3].strip().startswith("r0.red0")
    assert "legend:" in lines[4]


def test_glyphs_proportional_to_duration():
    s, job = _schedule()
    out = render_gantt(s, [Resource(0, 2, 1)], width=28, legend=False)
    # count glyphs inside the timeline cells (between the pipes) only --
    # the row label "r0.map0" contains digits too
    map0_cells = out.splitlines()[1].split("|")[1]
    # 10s map on a 14s span at 28 chars = 20 cells of glyph "0"
    assert map0_cells.count("0") == 20
    map1_cells = out.splitlines()[2].split("|")[1]
    assert map1_cells.count("1") == 10


def test_overlap_marked_with_hash():
    job = make_job(0, (10, 10))
    s = Schedule()
    s.add(TaskAssignment(job.map_tasks[0], 0, 0, 0))
    s.add(TaskAssignment(job.map_tasks[1], 0, 0, 5))  # same slot overlap
    out = render_gantt(s, [Resource(0, 1, 0)], width=20)
    assert "#" in out


def test_explicit_time_range():
    s, _ = _schedule()
    out = render_gantt(s, [Resource(0, 2, 1)], width=20, time_range=(0, 100))
    assert "[0, 100]" in out.splitlines()[0]


def test_width_validation():
    s, _ = _schedule()
    with pytest.raises(ValueError):
        render_gantt(s, [Resource(0, 2, 1)], width=4)


def test_render_executor_plan():
    sim = Simulator()
    ex = ScheduledExecutor(sim, [Resource(0, 2, 1)])
    job = make_job(0, (10,), (4,), deadline=100)
    ex.register_job(job)
    ex.install([
        TaskAssignment(job.map_tasks[0], 0, 0, 0),
        TaskAssignment(job.reduce_tasks[0], 0, 0, 10),
    ])
    sim.run(until=5)  # map running, reduce pending
    out = render_executor_plan(ex, width=28)
    assert "r0.map0" in out
    assert job.map_tasks[0].id in out  # legend carries task ids
