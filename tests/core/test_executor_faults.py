"""Executor fault transitions: injected failures, outages, abandonment."""

import pytest

from repro.core.executor import ScheduledExecutor
from repro.core.schedule import SchedulingError, TaskAssignment
from repro.faults import FaultInjector, FaultModel
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload.entities import Resource

from tests.conftest import make_job


def _assign(task, rid=0, slot=0, start=0):
    return TaskAssignment(task=task, resource_id=rid, slot_index=slot, start=start)


class _ScriptedInjector(FaultInjector):
    """Returns pre-scripted one-shot outcomes per task id (then success)."""

    def __init__(self, outcomes):
        super().__init__(FaultModel(), [Resource(0, 2, 2)])
        self._outcomes = dict(outcomes)

    def attempt_outcome(self, task):
        from repro.faults import AttemptOutcome

        return self._outcomes.pop(
            task.id, AttemptOutcome(duration=task.duration)
        )


def _setup(outcomes=None, resources=None, **hooks):
    sim = Simulator()
    metrics = MetricsCollector()
    injector = _ScriptedInjector(outcomes or {})
    ex = ScheduledExecutor(
        sim,
        resources or [Resource(0, 2, 1)],
        metrics=metrics,
        fault_injector=injector,
        **hooks,
    )
    return sim, metrics, ex


def test_mid_execution_failure_frees_slot_and_bumps_attempts():
    from repro.faults import AttemptOutcome

    failed = []
    sim, metrics, ex = _setup(
        outcomes={"t0_m0": AttemptOutcome(duration=5, fails_after=2.5)},
        on_task_failed=lambda a, reason: failed.append((a.task.id, reason)),
    )
    job = make_job(0, (5, 5), deadline=100)
    metrics.job_arrived(job)
    ex.register_job(job)
    ex.install([
        _assign(job.map_tasks[0], 0, 0, start=0),
        _assign(job.map_tasks[1], 0, 1, start=0),
    ])
    sim.run()
    assert failed == [("t0_m0", "failure")]
    assert sim.now == pytest.approx(5.0)  # healthy sibling still finished
    assert job.map_tasks[0].attempts == 1
    assert not ex.is_started("t0_m0")  # re-queued as unstarted
    assert ex.is_completed("t0_m1")
    assert metrics.failures_injected == 1
    # The freed slot is reusable: re-plan the failed task and finish.
    ex.install([_assign(job.map_tasks[0], 0, 0, start=sim.now)])
    sim.run()
    assert ex.is_completed("t0_m0")
    ex.assert_quiescent()


def test_straggler_mutates_duration_and_fires_hook():
    from repro.faults import AttemptOutcome

    perturbed = []
    sim, metrics, ex = _setup(
        outcomes={"t0_m0": AttemptOutcome(duration=12)},
        on_task_perturbed=lambda a: perturbed.append(a.task.id),
    )
    job = make_job(0, (5,), deadline=100)
    metrics.job_arrived(job)
    ex.register_job(job)
    ex.install([_assign(job.map_tasks[0], 0, 0, start=0)])
    sim.run()
    assert perturbed == ["t0_m0"]
    assert sim.now == 12
    assert job.map_tasks[0].duration == 12
    assert job.map_tasks[0].nominal_duration == 5
    assert metrics.stragglers_injected == 1
    ex.assert_quiescent()


def test_outage_kills_running_and_cancels_pending_on_node():
    failed = []
    sim, metrics, ex = _setup(
        resources=[Resource(0, 1, 1), Resource(1, 1, 1)],
        on_task_failed=lambda a, reason: failed.append((a.task.id, reason)),
    )
    job = make_job(0, (10, 10, 10), deadline=200)
    metrics.job_arrived(job)
    ex.register_job(job)
    ex.install([
        _assign(job.map_tasks[0], 0, 0, start=0),   # running when outage hits
        _assign(job.map_tasks[1], 1, 0, start=0),   # other node: survives
        _assign(job.map_tasks[2], 0, 0, start=12),  # pending on dead node
    ])
    sim.schedule_at(5, lambda: ex.fail_resource(0))
    sim.run()
    assert failed == [("t0_m0", "outage")]
    assert job.map_tasks[0].attempts == 1
    assert metrics.tasks_killed == 1
    assert ex.offline_resources == {0}
    assert ex.is_completed("t0_m1")
    assert not ex.is_started("t0_m2")  # pending entry was cancelled
    assert ex.planned_unstarted() == []
    # Recovery: the node accepts work again.
    ex.restore_resource(0)
    assert ex.offline_resources == set()
    now = sim.now
    ex.install([
        _assign(job.map_tasks[0], 0, 0, start=now),
        _assign(job.map_tasks[2], 0, 0, start=now + 10),
    ])
    sim.run()
    assert job.is_completed
    ex.assert_quiescent()


def test_start_on_offline_resource_is_a_bug():
    sim, metrics, ex = _setup()
    job = make_job(0, (5,), deadline=100)
    ex.register_job(job)
    ex.fail_resource(0)
    ex.install([_assign(job.map_tasks[0], 0, 0, start=1)])
    with pytest.raises(SchedulingError, match="offline"):
        sim.run()


def test_abandon_job_drops_pending_but_lets_running_finish():
    sim, metrics, ex = _setup()
    job = make_job(0, (5, 5), deadline=100)
    other = make_job(1, (5,), deadline=100)
    metrics.job_arrived(job)
    metrics.job_arrived(other)
    ex.register_job(job)
    ex.register_job(other)
    ex.install([
        _assign(job.map_tasks[0], 0, 0, start=0),
        _assign(job.map_tasks[1], 0, 0, start=10),
        _assign(other.map_tasks[0], 0, 1, start=0),
    ])
    sim.schedule_at(2, lambda: ex.abandon_job(job.id))
    sim.run()
    assert ex.is_completed("t0_m0")      # running attempt ran to completion
    assert not ex.is_started("t0_m1")    # pending entry dropped
    assert ex.is_completed("t1_m0")      # unrelated job unaffected
    ex.assert_quiescent()
