"""Plan-driven executor: event generation, re-planning, invariants."""

import pytest

from repro.core.executor import ScheduledExecutor
from repro.core.schedule import SchedulingError, TaskAssignment
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload.entities import Resource

from tests.conftest import make_job


def _setup(resources=None):
    sim = Simulator()
    metrics = MetricsCollector()
    executor = ScheduledExecutor(
        sim, resources or [Resource(0, 2, 1)], metrics=metrics
    )
    return sim, metrics, executor


def _assign(task, rid=0, slot=0, start=0):
    return TaskAssignment(task=task, resource_id=rid, slot_index=slot, start=start)


def test_tasks_start_at_planned_times():
    sim, metrics, ex = _setup()
    job = make_job(0, (5,), (3,), deadline=100)
    metrics.job_arrived(job)
    ex.register_job(job)
    ex.install([
        _assign(job.map_tasks[0], 0, 0, start=2),
        _assign(job.reduce_tasks[0], 0, 0, start=7),
    ])
    sim.run()
    assert job.is_completed
    assert metrics.completion_time(job.id) == 10
    ex.assert_quiescent()


def test_job_completion_recorded_once():
    sim, metrics, ex = _setup()
    job = make_job(0, (5, 5), deadline=100)
    metrics.job_arrived(job)
    ex.register_job(job)
    ex.install([
        _assign(job.map_tasks[0], 0, 0, start=0),
        _assign(job.map_tasks[1], 0, 1, start=0),
    ])
    sim.run()
    assert metrics.finalize().jobs_completed == 1


def test_replan_moves_unstarted_tasks():
    sim, metrics, ex = _setup()
    job = make_job(0, (5, 5), deadline=100)
    metrics.job_arrived(job)
    ex.register_job(job)
    ex.install([
        _assign(job.map_tasks[0], 0, 0, start=0),
        _assign(job.map_tasks[1], 0, 0, start=20),
    ])
    sim.run(until=10)
    # task 0 started and finished; re-plan task 1 earlier
    ex.install([
        _assign(job.map_tasks[0], 0, 0, start=0),  # frozen pass-through
        _assign(job.map_tasks[1], 0, 1, start=12),
    ])
    sim.run()
    assert metrics.completion_time(job.id) == 17


def test_replan_cannot_move_started_tasks():
    sim, metrics, ex = _setup()
    job = make_job(0, (10,), deadline=100)
    metrics.job_arrived(job)
    ex.register_job(job)
    original = _assign(job.map_tasks[0], 0, 0, start=0)
    ex.install([original])
    sim.run(until=5)
    assert ex.is_started(job.map_tasks[0].id)
    # attempt to move it: silently ignored (frozen)
    ex.install([_assign(job.map_tasks[0], 0, 1, start=50)])
    sim.run()
    assert metrics.completion_time(job.id) == 10


def test_snapshot_running():
    sim, metrics, ex = _setup()
    job = make_job(0, (10,), (3,), deadline=100)
    metrics.job_arrived(job)
    ex.register_job(job)
    ex.install([
        _assign(job.map_tasks[0], 0, 0, start=0),
        _assign(job.reduce_tasks[0], 0, 0, start=10),
    ])
    sim.run(until=5)
    running = ex.snapshot_running()
    assert [a.task.id for a in running] == [job.map_tasks[0].id]
    assert job.map_tasks[0].is_prev_scheduled
    assert [a.task.id for a in ex.planned_unstarted()] == [job.reduce_tasks[0].id]


def test_past_start_rejected():
    sim, metrics, ex = _setup()
    job = make_job(0, (5,))
    ex.register_job(job)
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        ex.install([_assign(job.map_tasks[0], start=5)])


def test_double_booked_slot_detected_at_start():
    sim, metrics, ex = _setup()
    job = make_job(0, (5, 5), deadline=100)
    ex.register_job(job)
    # both tasks on the same slot at overlapping times: install succeeds
    # (install does not validate) but the start event must blow up
    ex.install([
        _assign(job.map_tasks[0], 0, 0, start=0),
        _assign(job.map_tasks[1], 0, 0, start=3),
    ])
    with pytest.raises(SchedulingError, match="double-booked"):
        sim.run()


def test_back_to_back_on_same_slot_ok():
    sim, metrics, ex = _setup()
    job = make_job(0, (5, 5), deadline=100)
    metrics.job_arrived(job)
    ex.register_job(job)
    ex.install([
        _assign(job.map_tasks[0], 0, 0, start=0),
        _assign(job.map_tasks[1], 0, 0, start=5),  # starts as the first ends
    ])
    sim.run()
    assert metrics.completion_time(job.id) == 10


def test_unknown_resource_rejected_at_start():
    sim, metrics, ex = _setup()
    job = make_job(0, (5,))
    ex.register_job(job)
    ex.install([_assign(job.map_tasks[0], rid=9)])
    with pytest.raises(SchedulingError, match="unknown resource"):
        sim.run()


def test_slot_index_out_of_range_rejected():
    sim, metrics, ex = _setup()
    job = make_job(0, (5,))
    ex.register_job(job)
    ex.install([_assign(job.map_tasks[0], 0, 7, start=0)])
    with pytest.raises(SchedulingError, match="out of range"):
        sim.run()


def test_quiescence_detects_pending_tasks():
    sim, metrics, ex = _setup()
    job = make_job(0, (5,))
    ex.register_job(job)
    ex.install([_assign(job.map_tasks[0], 0, 0, start=50)])
    sim.run(until=10)
    with pytest.raises(SchedulingError, match="never started"):
        ex.assert_quiescent()


def test_add_only_install_with_replace_false():
    sim, metrics, ex = _setup()
    j1 = make_job(0, (5,), deadline=100)
    j2 = make_job(1, (5,), deadline=100)
    metrics.job_arrived(j1)
    metrics.job_arrived(j2)
    ex.register_job(j1)
    ex.register_job(j2)
    a1 = _assign(j1.map_tasks[0], 0, 0, start=0)
    ex.install([a1])
    # schedule-once mode: add j2 without cancelling j1's plan
    ex.install([a1, _assign(j2.map_tasks[0], 0, 1, start=0)], replace=False)
    sim.run()
    assert metrics.finalize().jobs_completed == 2


def test_conflicting_duplicate_plan_rejected():
    sim, metrics, ex = _setup()
    job = make_job(0, (5,))
    ex.register_job(job)
    ex.install([_assign(job.map_tasks[0], 0, 0, start=0)])
    with pytest.raises(SchedulingError, match="conflicting"):
        ex.install(
            [_assign(job.map_tasks[0], 0, 0, start=4)], replace=False
        )
