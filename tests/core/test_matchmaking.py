"""Section V.D matchmaking decomposition."""

import pytest

from repro.core.matchmaking import (
    UnitSlot,
    assign_slots_within_resources,
    decompose_combined_schedule,
    regroup_unit_resources,
)
from repro.core.schedule import (
    Schedule,
    SchedulingError,
    SlotKind,
    TaskAssignment,
    validate_schedule,
)
from repro.workload.entities import Resource

from tests.conftest import make_job


def test_unit_slot_bookkeeping():
    slot = UnitSlot(0, 0)
    slot.occupy(2, 10)
    assert not slot.free_for(5, 8)
    assert slot.free_for(10, 12)
    assert slot.free_for(0, 2)
    assert slot.gap_before(11) == 1
    with pytest.raises(SchedulingError):
        slot.occupy(9, 11)


def test_paper_best_gap_example():
    """The paper's r1/r2 example: r1 busy to 10, r2 busy to 8; a task at 11
    goes to r1 (gap 1 < gap 3)."""
    job = make_job(0, (4,))
    task = job.map_tasks[0]
    r1_busy = make_job(90, (8,)).map_tasks[0]  # 2..10
    r2_busy = make_job(91, (3,)).map_tasks[0]  # 5..8
    frozen = [
        TaskAssignment(r1_busy, resource_id=1, slot_index=0, start=2),
        TaskAssignment(r2_busy, resource_id=2, slot_index=0, start=5),
    ]
    resources = [Resource(1, 1, 0), Resource(2, 1, 0)]
    out = decompose_combined_schedule([(task, 11)], frozen, resources)
    placed = next(a for a in out if a.task is task)
    assert placed.resource_id == 1


def test_decompose_respects_combined_capacity():
    job = make_job(0, (5, 5, 5, 5), (3, 3), deadline=1000)
    resources = [Resource(0, 2, 1), Resource(1, 2, 1)]
    movable = [(t, 0) for t in job.map_tasks] + [(t, 10) for t in job.reduce_tasks]
    out = decompose_combined_schedule(movable, [], resources)
    schedule = Schedule()
    for a in out:
        schedule.add(a)
    assert validate_schedule(schedule, [job], resources) == []
    # four simultaneous maps exactly fill 2+2 slots
    assert len({a.slot_key() for a in out if a.slot_kind is SlotKind.MAP}) == 4


def test_decompose_overload_raises():
    job = make_job(0, (5, 5, 5))
    resources = [Resource(0, 2, 0)]  # only two map slots
    movable = [(t, 0) for t in job.map_tasks]
    with pytest.raises(SchedulingError):
        decompose_combined_schedule(movable, [], resources)


def test_frozen_pass_through_and_conflict_avoidance():
    job = make_job(0, (6, 4))
    running = TaskAssignment(job.map_tasks[0], 0, 0, start=0)  # [0, 6) on r0/0
    resources = [Resource(0, 1, 0), Resource(1, 1, 0)]
    out = decompose_combined_schedule([(job.map_tasks[1], 2)], [running], resources)
    assert running in out
    placed = next(a for a in out if a.task is job.map_tasks[1])
    assert placed.resource_id == 1  # r0's only slot is busy until 6


def test_frozen_on_missing_slot_rejected():
    job = make_job(0, (6,))
    running = TaskAssignment(job.map_tasks[0], 0, 3, start=0)  # slot 3 absent
    with pytest.raises(SchedulingError):
        decompose_combined_schedule([], [running], [Resource(0, 1, 0)])


def test_assign_slots_within_resources():
    job = make_job(0, (5, 5), (3,), deadline=1000)
    resources = [Resource(0, 2, 1)]
    movable = [
        (job.map_tasks[0], 0, 0),
        (job.map_tasks[1], 0, 0),
        (job.reduce_tasks[0], 10, 0),
    ]
    out = assign_slots_within_resources(movable, [], resources)
    slots = {a.task.id: a.slot_index for a in out}
    assert slots[job.map_tasks[0].id] != slots[job.map_tasks[1].id]


def test_assign_slots_per_resource_overload_raises():
    job = make_job(0, (5, 5))
    movable = [(job.map_tasks[0], 0, 0), (job.map_tasks[1], 0, 0)]
    with pytest.raises(SchedulingError):
        assign_slots_within_resources(movable, [], [Resource(0, 1, 0)])


def test_assign_slots_unknown_resource():
    job = make_job(0, (5,))
    with pytest.raises(SchedulingError):
        assign_slots_within_resources(
            [(job.map_tasks[0], 0, 9)], [], [Resource(0, 1, 0)]
        )


# ----------------------------------------------------- regrouping (V.D #2)
def test_regroup_paper_example():
    """100 map slots over nm=50, 100 reduce slots over nr=30: 50 resources;
    20 with 3 reduce slots and 10 with 4."""
    resources = regroup_unit_resources(100, 100, 50, 30)
    assert len(resources) == 50
    assert all(r.map_capacity == 2 for r in resources)
    reduce_caps = sorted(r.reduce_capacity for r in resources)
    assert reduce_caps.count(0) == 20
    assert reduce_caps.count(3) == 20
    assert reduce_caps.count(4) == 10
    assert sum(r.reduce_capacity for r in resources) == 100


def test_regroup_even_division():
    resources = regroup_unit_resources(8, 4, 4, 4)
    assert [r.map_capacity for r in resources] == [2, 2, 2, 2]
    assert [r.reduce_capacity for r in resources] == [1, 1, 1, 1]


def test_regroup_zero_everything():
    assert regroup_unit_resources(0, 0, 0, 0) == []


def test_regroup_slots_without_resources_rejected():
    with pytest.raises(ValueError):
        regroup_unit_resources(4, 0, 0, 0)
    with pytest.raises(ValueError):
        regroup_unit_resources(0, 4, 1, 0)
    with pytest.raises(ValueError):
        regroup_unit_resources(1, 1, -1, 1)
