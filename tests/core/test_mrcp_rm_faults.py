"""MRCP-RM fault recovery: retries, give-up, outages, solver degradation."""

import pytest

from repro.core import MrcpRm, MrcpRmConfig
from repro.cp.solver import SolverParams
from repro.faults import FaultModel, OutageWindow
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload.entities import make_uniform_cluster

from tests.conftest import make_job


def _run(jobs, resources=None, config=None, before_run=None):
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim,
        resources or make_uniform_cluster(2, 2, 2),
        config or MrcpRmConfig(solver=SolverParams(time_limit=0.5)),
        metrics,
    )
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: rm.submit(j))
    if before_run is not None:
        before_run(sim, rm)
    sim.run()
    rm.executor.assert_quiescent()
    return metrics.finalize(), rm


def _fault_config(**fault_kw):
    cfg_kw = {
        k: fault_kw.pop(k)
        for k in ("max_task_retries", "retry_backoff")
        if k in fault_kw
    }
    return MrcpRmConfig(
        solver=SolverParams(time_limit=0.5),
        faults=FaultModel(**fault_kw),
        **cfg_kw,
    )


def test_failed_tasks_are_retried_and_jobs_complete():
    jobs = [
        make_job(i, (4, 4), (6,), arrival=i * 5, earliest_start=i * 5,
                 deadline=i * 5 + 500)
        for i in range(4)
    ]
    metrics, _ = _run(jobs, config=_fault_config(task_failure_prob=0.3, seed=1))
    assert metrics.jobs_completed == 4
    assert metrics.jobs_failed == 0
    assert metrics.failures_injected > 0
    assert metrics.retries == metrics.failures_injected
    assert metrics.replans_on_failure > 0
    d = metrics.as_dict()
    assert d["retries"] == metrics.retries


def test_retry_budget_exhaustion_fails_the_job():
    """With a certain failure hazard every attempt dies; after
    max_task_retries the job is declared failed instead of looping."""
    job = make_job(0, (5,), deadline=500)
    metrics, rm = _run(
        [job],
        config=_fault_config(task_failure_prob=1.0, max_task_retries=2, seed=3),
    )
    assert metrics.jobs_completed == 0
    assert metrics.jobs_failed == 1
    assert metrics.failed_job_ids == [0]
    assert rm.failed_jobs == [0]
    # initial attempt + 2 retries, all failed
    assert metrics.failures_injected == 3
    assert metrics.retries == 2


def test_outage_preempts_and_recovers():
    job = make_job(0, (10, 10, 10, 10), deadline=500)
    metrics, _ = _run(
        [job],
        resources=make_uniform_cluster(2, 2, 2),
        config=_fault_config(outages=(OutageWindow(0, 3.0, 20.0),)),
    )
    assert metrics.jobs_completed == 1
    assert metrics.outages == 1
    assert metrics.tasks_killed > 0
    assert metrics.retries == metrics.tasks_killed


def test_full_cluster_outage_stalls_then_resumes():
    """When every resource is down the manager stalls instead of raising,
    and resumes scheduling on recovery."""
    job = make_job(0, (5, 5), deadline=500)
    metrics, _ = _run(
        [job],
        resources=make_uniform_cluster(2, 2, 2),
        config=_fault_config(
            outages=(OutageWindow(0, 2.0, 30.0), OutageWindow(1, 2.0, 30.0)),
        ),
    )
    assert metrics.jobs_completed == 1
    assert metrics.makespan >= 32  # nothing could run before recovery


def test_retry_backoff_delays_the_replan():
    fast, _ = _run(
        [make_job(0, (5,), deadline=500)],
        config=_fault_config(task_failure_prob=0.9, seed=5),
    )
    slow, _ = _run(
        [make_job(0, (5,), deadline=500)],
        config=_fault_config(task_failure_prob=0.9, retry_backoff=7.0, seed=5),
    )
    assert fast.failures_injected >= 1
    assert slow.makespan >= fast.makespan + 7


def test_forced_solver_timeout_degrades_to_edf_fallback():
    jobs = [
        make_job(i, (4, 4), (6,), arrival=i * 5, earliest_start=i * 5,
                 deadline=i * 5 + 500)
        for i in range(3)
    ]
    metrics, _ = _run(
        [jobs[0], jobs[1], jobs[2]],
        config=MrcpRmConfig(solver=SolverParams(time_limit=0.0)),
    )
    assert metrics.jobs_completed == 3
    assert metrics.fallback_solves > 0
    assert "fallback_solves" in metrics.as_dict()


def test_strict_mode_still_raises_on_timeout():
    from repro.core.schedule import SchedulingError

    with pytest.raises(SchedulingError):
        _run(
            [make_job(0, (5,), deadline=500)],
            config=MrcpRmConfig(
                solver=SolverParams(time_limit=0.0),
                fallback_to_heuristic=False,
            ),
        )


def test_fractional_time_trigger_rounds_up_not_down():
    """Regression: a scheduling event at a fractional simulation time must
    plan from ceil(now), not int(now) -- truncation planned starts in the
    past and the executor rejected them."""
    job1 = make_job(0, (5, 5), deadline=500)
    job2 = make_job(1, (5,), deadline=500)
    metrics, _ = _run(
        [job1],
        before_run=lambda sim, rm: sim.schedule_at(
            2.5, lambda: rm.submit(job2)
        ),
    )
    assert metrics.jobs_completed == 2


def test_faults_require_replanning_mode():
    with pytest.raises(ValueError, match="replan"):
        MrcpRm(
            Simulator(),
            make_uniform_cluster(2, 2, 2),
            MrcpRmConfig(
                replan=False, faults=FaultModel(task_failure_prob=0.5)
            ),
            MetricsCollector(),
        )
