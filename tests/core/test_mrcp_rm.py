"""MRCP-RM end-to-end behaviour inside the simulation."""

from repro.core import MrcpRm, MrcpRmConfig
from repro.core.formulation import FormulationMode
from repro.cp.solver import SolverParams
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload.entities import Resource, make_uniform_cluster

from tests.conftest import make_job


def _run(jobs, resources=None, config=None):
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim,
        resources or make_uniform_cluster(2, 2, 2),
        config or MrcpRmConfig(solver=SolverParams(time_limit=0.5)),
        metrics,
    )
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: rm.submit(j))
    sim.run()
    rm.executor.assert_quiescent()
    return metrics.finalize(), rm


def test_single_job_completes_on_time():
    job = make_job(0, (5, 5), (3,), deadline=100)
    metrics, _ = _run([job])
    assert metrics.jobs_completed == 1
    assert metrics.late_jobs == 0
    # 2 maps in parallel (5) + reduce (3): completion at 8
    assert metrics.makespan == 8
    assert metrics.avg_turnaround == 8


def test_open_stream_all_jobs_complete():
    jobs = [
        make_job(i, (4, 4), (6,), arrival=i * 3, earliest_start=i * 3,
                 deadline=i * 3 + 200)
        for i in range(6)
    ]
    metrics, _ = _run(jobs)
    assert metrics.jobs_completed == 6
    assert metrics.late_jobs == 0
    assert metrics.scheduler_invocations >= 6


def test_earliest_start_respected():
    job = make_job(0, (5,), arrival=0, earliest_start=50, deadline=200)
    metrics, rm = _run([job])
    ct = metrics.completion_time(0) if hasattr(metrics, "completion_time") else None
    assert metrics.makespan == 55  # starts exactly at its EST
    # turnaround is measured from the SLA earliest start, not arrival
    assert metrics.avg_turnaround == 5


def test_est_deferral_queues_future_jobs():
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim,
        make_uniform_cluster(2, 2, 2),
        MrcpRmConfig(est_deferral=True, lookahead=0),
        metrics,
    )
    job = make_job(0, (5,), arrival=0, earliest_start=40, deadline=100)
    sim.schedule_at(0, lambda: rm.submit(job))
    sim.run(until=10)
    assert rm.deferred_jobs == [job]
    assert rm.active_jobs == []
    sim.run()
    assert metrics.finalize().jobs_completed == 1


def test_deferral_disabled_schedules_immediately():
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim,
        make_uniform_cluster(2, 2, 2),
        MrcpRmConfig(est_deferral=False),
        metrics,
    )
    job = make_job(0, (5,), arrival=0, earliest_start=40, deadline=100)
    sim.schedule_at(0, lambda: rm.submit(job))
    sim.run(until=1)
    assert rm.deferred_jobs == []
    assert rm.active_jobs == [job]
    sim.run()
    assert metrics.finalize().makespan == 45


def test_urgent_arrival_preempts_planned_work():
    """A new job with a tight deadline is re-planned ahead of a queued one.

    The relaxed job's first map is already running when the urgent job
    arrives (it cannot be preempted), but its *second* map has not started:
    re-planning must push it behind the urgent job's task.  Without
    re-planning the urgent job would start at t=20 and finish at 30 > 21.
    """
    relaxed = make_job(0, (10, 10), deadline=1000)  # lots of slack
    urgent = make_job(1, (10,), arrival=1, earliest_start=1, deadline=21)
    resources = [Resource(0, 1, 1)]  # a single map slot
    metrics, _ = _run([relaxed, urgent], resources=resources)
    assert metrics.jobs_completed == 2
    assert metrics.late_jobs == 0


def test_barrier_enforced_through_execution():
    job = make_job(0, (7, 3), (4,), deadline=100)
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(sim, make_uniform_cluster(1, 2, 2), MrcpRmConfig(), metrics)
    starts = {}
    orig = rm.executor._start_task

    def spy(a):
        starts[a.task.id] = sim.now
        orig(a)

    rm.executor._start_task = spy
    sim.schedule_at(0, lambda: rm.submit(job))
    sim.run()
    red_start = starts[job.reduce_tasks[0].id]
    assert red_start >= max(
        starts[t.id] + t.duration for t in job.map_tasks
    )


def test_joint_mode_runs(small_resources):
    jobs = [make_job(i, (4,), (3,), arrival=i * 2, earliest_start=i * 2,
                     deadline=100 + i * 2) for i in range(3)]
    cfg = MrcpRmConfig(
        mode=FormulationMode.JOINT, solver=SolverParams(time_limit=0.5)
    )
    metrics, _ = _run(jobs, resources=small_resources, config=cfg)
    assert metrics.jobs_completed == 3
    assert metrics.late_jobs == 0


def test_schedule_once_mode_runs():
    jobs = [make_job(i, (4, 4), (3,), arrival=i * 2, earliest_start=i * 2,
                     deadline=200) for i in range(4)]
    cfg = MrcpRmConfig(replan=False, solver=SolverParams(time_limit=0.5))
    metrics, _ = _run(jobs, config=cfg)
    assert metrics.jobs_completed == 4


def test_overhead_recorded_per_invocation():
    jobs = [make_job(i, (3,), arrival=i * 5, earliest_start=i * 5,
                     deadline=500) for i in range(3)]
    metrics, _ = _run(jobs)
    assert metrics.scheduler_invocations >= 3
    assert metrics.total_sched_overhead > 0
    assert metrics.avg_sched_overhead > 0


def test_unschedulable_late_job_still_completes():
    """A job that can't meet its deadline runs anyway and counts late."""
    job = make_job(0, (10, 10, 10, 10), deadline=12)
    metrics, _ = _run([job], resources=[Resource(0, 1, 1)])
    assert metrics.jobs_completed == 1
    assert metrics.late_jobs == 1
    assert metrics.percent_late == 100.0


def test_sla_earliest_start_not_mutated_by_clamping():
    """Table 2 clamps the *effective* EST; the SLA field must survive for
    the turnaround metric."""
    early = make_job(0, (5,), deadline=100)
    late_arrival = make_job(1, (5,), arrival=30, earliest_start=30, deadline=130)
    metrics, _ = _run([early, late_arrival])
    assert early.earliest_start == 0
    assert late_arrival.earliest_start == 30
