"""Property-based matchmaking tests.

The key feasibility theorem behind Section V.D: any start-time assignment
whose instantaneous parallelism never exceeds the total slot count can be
decomposed onto unit slots by the best-gap greedy pass -- including in the
presence of frozen tasks pinned to specific slots.
"""

from hypothesis import given, settings, strategies as st

from repro.core.matchmaking import decompose_combined_schedule
from repro.core.schedule import TaskAssignment
from repro.cp.profile import TimetableProfile
from repro.workload.entities import Resource, Task, TaskKind


@st.composite
def combined_schedules(draw):
    """A capacity-respecting combined schedule with optional frozen prefix."""
    num_resources = draw(st.integers(1, 3))
    slots_per = draw(st.integers(1, 3))
    capacity = num_resources * slots_per
    now = draw(st.integers(0, 10))

    # movable tasks: starts >= now (capacity filtering happens in the test,
    # where the frozen profile is known)
    movable = []
    for i in range(draw(st.integers(0, 12))):
        length = draw(st.integers(1, 6))
        start = draw(st.integers(now, now + 20))
        movable.append((start, length, i))

    # frozen tasks: starts <= now, pinned to concrete slots without overlap
    frozen_specs = []
    used = {}
    for i in range(draw(st.integers(0, capacity))):
        rid = draw(st.integers(0, num_resources - 1))
        slot = draw(st.integers(0, slots_per - 1))
        if (rid, slot) in used:
            continue
        start = draw(st.integers(0, now))
        length = draw(st.integers(1, 15))
        used[(rid, slot)] = True
        frozen_specs.append((rid, slot, start, length, i))

    return num_resources, slots_per, now, movable, frozen_specs


@given(combined_schedules())
@settings(max_examples=120, deadline=None)
def test_decomposition_valid_whenever_profile_fits(spec):
    num_resources, slots_per, now, movable_raw, frozen_specs = spec
    capacity = num_resources * slots_per
    resources = [Resource(r, slots_per, 0) for r in range(num_resources)]

    frozen = []
    profile = TimetableProfile()
    for rid, slot, start, length, i in frozen_specs:
        task = Task(f"f{i}", 900 + i, TaskKind.MAP, length)
        frozen.append(TaskAssignment(task, rid, slot, start))
        profile.add(start, start + length, 1)

    movable = []
    for start, length, i in movable_raw:
        # only admit tasks that keep the combined profile within capacity
        if (
            profile.earliest_fit(start, start, length, 1, capacity)
            is not None
        ):
            profile.add(start, start + length, 1)
            movable.append((Task(f"t{i}", i, TaskKind.MAP, length), start))

    out = decompose_combined_schedule(movable, frozen, resources)
    assert len(out) == len(movable) + len(frozen)

    # start times preserved verbatim
    starts = {a.task.id: a.start for a in out}
    for task, start in movable:
        assert starts[task.id] == start
    for a in frozen:
        assert starts[a.task.id] == a.start

    # slot exclusivity: no two tasks overlap on the same (rid, slot)
    per_slot = {}
    for a in out:
        per_slot.setdefault(a.slot_key(), []).append((a.start, a.end))
    for intervals in per_slot.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    # every assignment within its resource's slot range
    for a in out:
        assert 0 <= a.slot_index < slots_per
        assert 0 <= a.resource_id < num_resources
