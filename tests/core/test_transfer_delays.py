"""Data-transfer delays on workflow edges (communication-cost extension)."""

import pytest

from repro.core import MrcpRm, MrcpRmConfig
from repro.core.schedule import Schedule, TaskAssignment, validate_schedule
from repro.cp.solver import SolverParams
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload import make_uniform_cluster
from repro.workload.entities import Resource, Task, TaskKind
from repro.workload.workflows import (
    Stage,
    WorkflowJob,
    WorkflowWorkloadParams,
    generate_workflow_workload,
    validate_workflows,
)


def _task(tid, job_id=0, duration=5):
    return Task(tid, job_id, TaskKind.MAP, duration)


def _chain_with_delay(delay=7, deadline=1000):
    return WorkflowJob(
        id=0, arrival_time=0, earliest_start=0, deadline=deadline,
        stages=[Stage("A", [_task("a0")]), Stage("B", [_task("b0")])],
        edges=[("A", "B")],
        edge_delays={("A", "B"): delay},
    )


def test_negative_delay_rejected():
    with pytest.raises(ValueError, match="negative delay"):
        _chain_with_delay(delay=-1)


def test_delay_on_unknown_edge_rejected():
    with pytest.raises(ValueError, match="unknown edge"):
        WorkflowJob(
            id=0, arrival_time=0, earliest_start=0, deadline=10,
            stages=[Stage("A", [_task("a0")])],
            edges=[],
            edge_delays={("A", "B"): 3},
        )


def test_critical_path_includes_delay():
    wf = _chain_with_delay(delay=7)
    # A(5) + transfer(7) + B(5)
    assert wf.critical_path_time(4, 4) == 17


def test_executed_schedule_honours_delay():
    wf = _chain_with_delay(delay=7)
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim, make_uniform_cluster(2, 2, 2),
        MrcpRmConfig(solver=SolverParams(time_limit=0.3)), metrics,
    )
    sim.schedule_at(0, lambda: rm.submit(wf))
    sim.run()
    rm.executor.assert_quiescent()
    assert metrics.finalize().makespan == 17  # 5 + 7 + 5


def test_validator_checks_delay():
    wf = _chain_with_delay(delay=7)
    a, b = wf.stages[0].tasks[0], wf.stages[1].tasks[0]
    good = Schedule()
    good.add(TaskAssignment(a, 0, 0, 0))
    good.add(TaskAssignment(b, 0, 1, 12))  # 5 + 7
    assert validate_schedule(good, [wf], [Resource(0, 2, 0)]) == []
    bad = Schedule()
    bad.add(TaskAssignment(a, 0, 0, 0))
    bad.add(TaskAssignment(b, 0, 1, 8))  # after A but inside the delay
    problems = validate_schedule(bad, [wf], [Resource(0, 2, 0)])
    assert any("delay" in p for p in problems)


def test_generator_draws_delays():
    params = WorkflowWorkloadParams(
        num_jobs=10, stages_range=(2, 3), transfer_delay_range=(1, 5)
    )
    wfs = generate_workflow_workload(params, seed=4)
    assert validate_workflows(wfs) == []
    assert any(w.edge_delays for w in wfs)
    for w in wfs:
        for d in w.edge_delays.values():
            assert 1 <= d <= 5


def test_generator_delay_validation():
    with pytest.raises(ValueError):
        generate_workflow_workload(
            WorkflowWorkloadParams(transfer_delay_range=(-1, 2))
        )


def test_delayed_workflow_stream_end_to_end():
    params = WorkflowWorkloadParams(
        num_jobs=6, stages_range=(2, 3), tasks_per_stage_range=(1, 3),
        e_max=8, arrival_rate=0.05, transfer_delay_range=(1, 10),
        total_map_slots=4, total_reduce_slots=4,
    )
    wfs = generate_workflow_workload(params, seed=6)
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim, make_uniform_cluster(2, 2, 2),
        MrcpRmConfig(solver=SolverParams(time_limit=0.2)), metrics,
    )
    for wf in wfs:
        sim.schedule_at(wf.arrival_time, lambda j=wf: rm.submit(j))
    sim.run()
    rm.executor.assert_quiescent()
    assert metrics.finalize().jobs_completed == 6


def test_trace_round_trip_preserves_delays():
    from repro.workload.traces import workflows_from_json, workflows_to_json

    wfs = [_chain_with_delay(delay=9)]
    restored = workflows_from_json(workflows_to_json(wfs))
    assert restored[0].edge_delays == {("A", "B"): 9}
