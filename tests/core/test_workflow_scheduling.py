"""DAG workflows through the full MRCP-RM stack (Section VII extension)."""

from repro.core import MrcpRm, MrcpRmConfig
from repro.core.formulation import FormulationMode, build_model
from repro.cp.solver import CpSolver, SolverParams
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload import make_uniform_cluster
from repro.workload.entities import Task, TaskKind
from repro.workload.workflows import (
    Stage,
    WorkflowJob,
    WorkflowWorkloadParams,
    from_mapreduce,
    generate_workflow_workload,
)

from tests.conftest import make_job


def _task(tid, job_id=0, kind=TaskKind.MAP, duration=5):
    return Task(tid, job_id, kind, duration)


def _chain(job_id=0, durations=(4, 6, 3), deadline=1000):
    stages = [
        Stage(f"s{i}", [_task(f"w{job_id}_s{i}", job_id, duration=d)])
        for i, d in enumerate(durations)
    ]
    edges = [(f"s{i}", f"s{i + 1}") for i in range(len(durations) - 1)]
    return WorkflowJob(
        id=job_id, arrival_time=0, earliest_start=0, deadline=deadline,
        stages=stages, edges=edges,
    )


def _run(workflows, resources=None, config=None):
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim,
        resources or make_uniform_cluster(2, 2, 2),
        config or MrcpRmConfig(solver=SolverParams(time_limit=0.3)),
        metrics,
    )
    for wf in workflows:
        sim.schedule_at(wf.arrival_time, lambda j=wf: rm.submit(j))
    sim.run()
    rm.executor.assert_quiescent()
    return metrics.finalize(), rm


# ------------------------------------------------------------- formulation
def test_formulation_builds_per_edge_barriers():
    wf = WorkflowJob(
        id=0, arrival_time=0, earliest_start=0, deadline=100,
        stages=[
            Stage("A", [_task("a0")]),
            Stage("B", [_task("b0")]),
            Stage("C", [_task("c0")]),
            Stage("D", [_task("d0")]),
        ],
        edges=[("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
    )
    result = build_model([wf], make_uniform_cluster(2, 2, 2), now=0)
    assert len(result.model.barriers) == 4  # one per DAG edge
    spec = result.model.indicators[0]
    assert [iv.name for iv in spec.tasks] == ["d0"]  # terminal stage only
    group = result.model.groups[0]
    assert len(group.stages) == 4


def test_workflow_solver_respects_dag():
    wf = _chain(durations=(4, 6, 3))
    result = build_model([wf], make_uniform_cluster(2, 2, 2), now=0)
    solve = CpSolver().solve(result.model, time_limit=2.0)
    assert solve.status.has_solution
    s0 = solve.solution.start_of(result.interval_of["w0_s0"])
    s1 = solve.solution.start_of(result.interval_of["w0_s1"])
    s2 = solve.solution.start_of(result.interval_of["w0_s2"])
    assert s1 >= s0 + 4
    assert s2 >= s1 + 6


def test_chain_executes_in_order():
    wf = _chain(durations=(4, 6, 3))
    metrics, _ = _run([wf])
    assert metrics.jobs_completed == 1
    assert metrics.makespan == 13  # strict chain: 4 + 6 + 3
    assert metrics.late_jobs == 0


def test_diamond_parallel_branches_overlap():
    wf = WorkflowJob(
        id=0, arrival_time=0, earliest_start=0, deadline=1000,
        stages=[
            Stage("A", [_task("a0", duration=4)]),
            Stage("B", [_task("b0", duration=6)]),
            Stage("C", [_task("c0", duration=6)]),
            Stage("D", [_task("d0", duration=2)]),
        ],
        edges=[("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
    )
    metrics, _ = _run([wf])
    # B and C run in parallel after A: 4 + 6 + 2 = 12 (not 4+6+6+2)
    assert metrics.makespan == 12


def test_mixed_slot_kinds_in_workflow():
    wf = WorkflowJob(
        id=0, arrival_time=0, earliest_start=0, deadline=1000,
        stages=[
            Stage("extract", [_task("e0", duration=5), _task("e1", duration=5)]),
            Stage("aggregate", [_task("g0", kind=TaskKind.REDUCE, duration=7)]),
        ],
        edges=[("extract", "aggregate")],
    )
    metrics, _ = _run([wf], resources=make_uniform_cluster(1, 2, 1))
    assert metrics.makespan == 12  # maps parallel (5) + reduce (7)


def test_open_stream_of_random_workflows():
    params = WorkflowWorkloadParams(
        num_jobs=10, stages_range=(2, 4), tasks_per_stage_range=(1, 4),
        e_max=10, arrival_rate=0.05, total_map_slots=8, total_reduce_slots=8,
    )
    wfs = generate_workflow_workload(params, seed=13)
    metrics, _ = _run(wfs, resources=make_uniform_cluster(4, 2, 2))
    assert metrics.jobs_completed == 10


def test_workflow_replanning_freezes_running_stages():
    """A second workflow arriving mid-flight must not disturb running tasks."""
    slow = _chain(job_id=0, durations=(10, 5), deadline=1000)
    urgent = _chain(job_id=1, durations=(4,), deadline=20)
    urgent.arrival_time = urgent.earliest_start = 2
    metrics, _ = _run([slow, urgent], resources=make_uniform_cluster(1, 1, 1))
    assert metrics.jobs_completed == 2
    assert metrics.late_jobs >= 0  # executes cleanly; no invariant violations


def test_workflow_joint_mode():
    wfs = [_chain(job_id=i, durations=(4, 3)) for i in range(2)]
    for i, wf in enumerate(wfs):
        wf.arrival_time = wf.earliest_start = i
    cfg = MrcpRmConfig(
        mode=FormulationMode.JOINT, solver=SolverParams(time_limit=0.5)
    )
    metrics, _ = _run(wfs, config=cfg)
    assert metrics.jobs_completed == 2


def test_mapreduce_job_equals_its_workflow_view():
    """from_mapreduce(job) must schedule identically to the raw Job."""
    job = make_job(0, (5, 7), (4,), deadline=100)
    m1, _ = _run([from_mapreduce(job.copy())])
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(sim, make_uniform_cluster(2, 2, 2),
                MrcpRmConfig(solver=SolverParams(time_limit=0.3)), metrics)
    fresh = job.copy()
    sim.schedule_at(0, lambda: rm.submit(fresh))
    sim.run()
    m2 = metrics.finalize()
    assert m1.makespan == m2.makespan
    assert m1.late_jobs == m2.late_jobs


def test_workflow_deadline_miss_counted():
    wf = _chain(durations=(10, 10), deadline=5)  # impossible deadline
    metrics, _ = _run([wf])
    assert metrics.late_jobs == 1
    assert metrics.jobs_completed == 1
