"""Closed-system batch scheduling facade."""

import pytest

from repro.core.batch import schedule_batch
from repro.core.formulation import FormulationMode
from repro.core.schedule import SchedulingError
from repro.cp.solution import SolveStatus
from repro.cp.solver import SolverParams
from repro.workload.entities import Resource, Task, TaskKind, make_uniform_cluster
from repro.workload.workflows import Stage, WorkflowJob

from tests.conftest import make_job


def test_batch_all_on_time():
    jobs = [
        make_job(0, (5, 5), (3,), deadline=100),
        make_job(1, (4,), deadline=100),
    ]
    result = schedule_batch(jobs, make_uniform_cluster(2, 2, 2))
    assert result.status.has_solution
    assert result.late_jobs == 0
    assert result.objective == 0
    assert set(result.completion_times) == {0, 1}
    assert result.makespan <= 100
    assert result.solve_seconds > 0


@pytest.mark.slow
def test_batch_counts_unavoidable_lateness():
    # two 10s jobs, one slot, both deadline 10: exactly one must be late
    jobs = [
        make_job(0, (10,), deadline=10),
        make_job(1, (10,), deadline=10),
    ]
    result = schedule_batch(
        jobs, [Resource(0, 1, 1)],
        solver_params=SolverParams(time_limit=2.0),
    )
    assert result.late_jobs == 1
    assert len(result.late_job_ids) == 1


def test_batch_joint_mode():
    jobs = [make_job(i, (6,), deadline=6) for i in range(2)]
    result = schedule_batch(
        jobs,
        [Resource(0, 1, 0), Resource(1, 1, 0)],
        mode=FormulationMode.JOINT,
        solver_params=SolverParams(time_limit=2.0),
    )
    assert result.late_jobs == 0
    rids = {a.resource_id for a in result.schedule}
    assert rids == {0, 1}


def test_batch_with_workflow():
    wf = WorkflowJob(
        id=0, arrival_time=0, earliest_start=0, deadline=100,
        stages=[
            Stage("A", [Task("a0", 0, TaskKind.MAP, 4)]),
            Stage("B", [Task("b0", 0, TaskKind.MAP, 6)]),
        ],
        edges=[("A", "B")],
    )
    result = schedule_batch([wf], make_uniform_cluster(1, 2, 1))
    assert result.late_jobs == 0
    assert result.makespan == 10


def test_batch_respects_start_time():
    jobs = [make_job(0, (5,), deadline=100)]
    result = schedule_batch(jobs, make_uniform_cluster(1, 1, 1), start_time=50)
    a = next(iter(result.schedule))
    assert a.start >= 50


def test_batch_gantt_renders():
    jobs = [make_job(0, (5, 5), (3,), deadline=100)]
    result = schedule_batch(jobs, make_uniform_cluster(1, 2, 1))
    text = result.gantt(width=30)
    assert "r0.map0" in text


def test_empty_batch_rejected():
    with pytest.raises(SchedulingError, match="empty"):
        schedule_batch([], make_uniform_cluster(1, 1, 1))


def test_batch_optimal_status_when_all_on_time():
    jobs = [make_job(0, (3,), deadline=50)]
    result = schedule_batch(jobs, make_uniform_cluster(1, 1, 1))
    assert result.status is SolveStatus.OPTIMAL
