"""Schedule types and the independent validator."""

from repro.core.schedule import (
    Schedule,
    SlotKind,
    TaskAssignment,
    validate_schedule,
)
from repro.workload.entities import Resource, TaskKind

from tests.conftest import make_job


def _assign(task, rid=0, slot=0, start=0):
    return TaskAssignment(task=task, resource_id=rid, slot_index=slot, start=start)


def test_assignment_properties():
    job = make_job(0, (5,), (3,))
    a = _assign(job.map_tasks[0], rid=1, slot=0, start=10)
    assert a.end == 15
    assert a.slot_kind is SlotKind.MAP
    assert a.slot_key() == (1, SlotKind.MAP, 0)
    r = _assign(job.reduce_tasks[0])
    assert r.slot_kind is SlotKind.REDUCE


def test_schedule_lookup_and_by_resource():
    job = make_job(0, (5, 5), (3,))
    s = Schedule()
    s.add(_assign(job.map_tasks[0], rid=0, slot=0, start=10))
    s.add(_assign(job.map_tasks[1], rid=0, slot=1, start=0))
    s.add(_assign(job.reduce_tasks[0], rid=0, slot=0, start=20))
    assert len(s) == 3
    by_res = s.by_resource()
    maps = by_res[(0, SlotKind.MAP)]
    assert [a.start for a in maps] == [0, 10]  # sorted by start
    assert s.job_completion(job) == 23


def test_validate_accepts_good_schedule():
    job = make_job(0, (5, 5), (3,), deadline=100)
    resources = [Resource(0, 2, 1)]
    s = Schedule()
    s.add(_assign(job.map_tasks[0], 0, 0, 0))
    s.add(_assign(job.map_tasks[1], 0, 1, 0))
    s.add(_assign(job.reduce_tasks[0], 0, 0, 5))
    assert validate_schedule(s, [job], resources) == []


def test_validate_detects_unknown_resource():
    job = make_job(0, (5,))
    s = Schedule()
    s.add(_assign(job.map_tasks[0], rid=7))
    problems = validate_schedule(s, [job], [Resource(0, 1, 1)])
    assert any("unknown resource" in p for p in problems)


def test_validate_detects_slot_overlap():
    job = make_job(0, (5, 5))
    s = Schedule()
    s.add(_assign(job.map_tasks[0], 0, 0, 0))
    s.add(_assign(job.map_tasks[1], 0, 0, 3))  # same slot, overlapping
    problems = validate_schedule(s, [job], [Resource(0, 2, 1)])
    assert any("overlap" in p for p in problems)


def test_validate_detects_slot_index_out_of_range():
    job = make_job(0, (5,))
    s = Schedule()
    s.add(_assign(job.map_tasks[0], 0, 5, 0))
    problems = validate_schedule(s, [job], [Resource(0, 2, 1)])
    assert any("slot index" in p for p in problems)


def test_validate_detects_est_violation():
    job = make_job(0, (5,), earliest_start=10, deadline=100)
    s = Schedule()
    s.add(_assign(job.map_tasks[0], 0, 0, 5))
    problems = validate_schedule(s, [job], [Resource(0, 1, 1)])
    assert any("earliest start" in p for p in problems)


def test_frozen_tasks_exempt_from_est():
    job = make_job(0, (5,), earliest_start=10, deadline=100)
    s = Schedule()
    s.add(_assign(job.map_tasks[0], 0, 0, 5))
    problems = validate_schedule(
        s, [job], [Resource(0, 1, 1)], frozen_task_ids=[job.map_tasks[0].id]
    )
    assert problems == []


def test_validate_detects_barrier_violation():
    job = make_job(0, (5,), (3,), deadline=100)
    s = Schedule()
    s.add(_assign(job.map_tasks[0], 0, 0, 0))
    s.add(_assign(job.reduce_tasks[0], 0, 0, 2))  # before map ends
    problems = validate_schedule(s, [job], [Resource(0, 1, 1)])
    assert any("before" in p for p in problems)


def test_validate_detects_start_in_past():
    job = make_job(0, (5,))
    s = Schedule()
    s.add(_assign(job.map_tasks[0], 0, 0, 3))
    problems = validate_schedule(s, [job], [Resource(0, 1, 1)], now=5)
    assert any("past" in p for p in problems)


def test_slot_kind_is_derived_from_task_kind():
    """An assignment cannot disagree with its task about the slot kind --
    it is derived -- so a reduce task always lands in the reduce books."""
    job = make_job(0, (5,), (3,))
    a = _assign(job.reduce_tasks[0], 0, 0, 10)
    assert a.slot_kind is SlotKind.REDUCE
    job.reduce_tasks[0].kind = TaskKind.MAP
    assert a.slot_kind is SlotKind.MAP  # follows the task, no divergence


def test_validate_workflow_stage_edges():
    """DAG workflows are validated per precedence edge."""
    from repro.workload.workflows import Stage, WorkflowJob
    from repro.workload.entities import Task

    t_a = Task("wa", 5, TaskKind.MAP, 4)
    t_b = Task("wb", 5, TaskKind.MAP, 4)
    wf = WorkflowJob(
        id=5, arrival_time=0, earliest_start=0, deadline=100,
        stages=[Stage("A", [t_a]), Stage("B", [t_b])],
        edges=[("A", "B")],
    )
    good = Schedule()
    good.add(_assign(t_a, 0, 0, 0))
    good.add(_assign(t_b, 0, 1, 4))
    assert validate_schedule(good, [wf], [Resource(0, 2, 0)]) == []

    bad = Schedule()
    bad.add(_assign(t_a, 0, 0, 0))
    bad.add(_assign(t_b, 0, 1, 2))  # starts before A ends
    problems = validate_schedule(bad, [wf], [Resource(0, 2, 0)])
    assert any("before predecessor ends" in p for p in problems)
