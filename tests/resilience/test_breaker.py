"""Circuit breaker state machine and degradation ladder unit tests."""

import pytest

from repro.core import MrcpRm, MrcpRmConfig
from repro.cp.solver import SolverParams
from repro.metrics import MetricsCollector
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    RUNGS,
    CircuitBreaker,
    DegradationLadder,
    InjectedSolverFailures,
    LadderConfig,
)
from repro.sim import Simulator
from repro.workload.entities import make_uniform_cluster

from tests.conftest import make_job


# ------------------------------------------------------------------ breaker
def test_breaker_opens_after_threshold_consecutive_failures():
    b = CircuitBreaker("cp_full", threshold=2, cooldown=3)
    assert b.allow()
    assert b.record(False) is None  # 1 failure: still closed
    assert b.state == CLOSED
    assert b.record(False) == (CLOSED, OPEN)
    assert b.opened_count == 1


def test_breaker_success_resets_the_failure_streak():
    b = CircuitBreaker("cp_full", threshold=2, cooldown=3)
    b.record(False)
    b.record(True)
    b.record(False)
    assert b.state == CLOSED  # streak broken by the success


def test_open_breaker_skips_then_half_opens_a_probe():
    b = CircuitBreaker("cp_full", threshold=1, cooldown=2)
    b.record(False)
    assert b.state == OPEN
    assert not b.allow()  # cooldown tick 1: skipped
    assert b.allow()  # cooldown expired: probe admitted
    assert b.state == HALF_OPEN


def test_failed_probe_reopens_successful_probe_closes():
    b = CircuitBreaker("cp_full", threshold=1, cooldown=2)
    b.record(False)
    b.allow(), b.allow()  # burn cooldown, half-open
    assert b.record(False) == (HALF_OPEN, OPEN)
    b.allow(), b.allow()
    assert b.record(True) == (HALF_OPEN, CLOSED)
    assert b.failures == 0


def test_breaker_snapshot_restore_round_trip():
    b = CircuitBreaker("cp_full", threshold=1, cooldown=3)
    b.record(False)
    b.allow()
    snap = b.snapshot()
    fresh = CircuitBreaker("cp_full", threshold=1, cooldown=3)
    fresh.restore(snap)
    assert fresh.snapshot() == snap
    assert fresh.state == OPEN
    assert fresh.cooldown_left == b.cooldown_left


# ------------------------------------------------------ injected failures
def test_injected_failures_consume_budget_in_call_order():
    chaos = InjectedSolverFailures(counts={"cp_full": 2})
    assert chaos.take("cp_full")
    assert chaos.take("cp_full")
    assert not chaos.take("cp_full")  # budget spent
    assert not chaos.take("edf")  # no budget configured


def test_injected_failures_repr_stable_across_consumption():
    """config_fingerprint hashes the config repr; consuming budget must
    not change it or checkpoint restores could never match."""
    chaos = InjectedSolverFailures(counts={"cp_full": 1})
    before = repr(chaos)
    chaos.take("cp_full")
    assert repr(chaos) == before


def test_injected_failures_state_restore_round_trip():
    chaos = InjectedSolverFailures(counts={"cp_full": 3, "edf": 1})
    chaos.take("cp_full")
    chaos.take("edf")
    state = chaos.state()
    fresh = InjectedSolverFailures(counts={"cp_full": 3, "edf": 1})
    fresh.restore(state)
    assert fresh.consumed == chaos.consumed
    assert not fresh.take("edf")  # already spent in the restored state


# ------------------------------------------------------------------- ladder
def _run_with_ladder(jobs, ladder_config):
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(
        sim,
        make_uniform_cluster(2, 2, 2),
        MrcpRmConfig(
            solver=SolverParams(time_limit=0.5),
            resilience=ladder_config,
            record_plan_history=True,
        ),
        metrics,
    )
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: rm.submit(j))
    sim.run()
    rm.executor.assert_quiescent()
    return metrics.finalize(), rm


def _jobs(n=3):
    return [
        make_job(i, (4, 4), (6,), arrival=i * 5, earliest_start=i * 5,
                 deadline=i * 5 + 500)
        for i in range(n)
    ]


def test_healthy_solver_stays_on_cp_full():
    metrics, rm = _run_with_ladder(_jobs(), LadderConfig())
    assert metrics.jobs_completed == 3
    assert set(metrics.solves_by_rung) == {"cp_full"}
    assert metrics.breaker_opens == 0
    assert all(rec.rung == "cp_full" for rec in rm.plan_history)


def test_injected_cp_failures_escalate_to_edf_and_count_fallbacks():
    """CP rungs forced down -> the ladder lands on EDF, which must feed
    the PR 1 fallback counter so existing dashboards keep working."""
    config = LadderConfig(
        failure_threshold=10,  # never open: every invocation retries CP
        chaos=InjectedSolverFailures(counts={"cp_full": 99, "cp_limited": 99}),
    )
    metrics, _ = _run_with_ladder(_jobs(), config)
    assert metrics.jobs_completed == 3
    assert metrics.solves_by_rung.get("edf", 0) > 0
    assert metrics.fallback_solves == metrics.solves_by_rung["edf"]
    assert "ladder_edf" in metrics.as_dict()


def test_breaker_escalation_walks_all_four_rungs():
    config = LadderConfig(
        failure_threshold=1,
        cooldown=2,
        chaos=InjectedSolverFailures(
            counts={"cp_full": 3, "cp_limited": 2, "edf": 1}
        ),
    )
    # 8 arrivals = 8 solver invocations: with threshold 1 / cooldown 2 the
    # cp_full breaker needs 7 invocations to exhaust its injected budget
    # and win a half-open probe.
    metrics, rm = _run_with_ladder(_jobs(8), config)
    assert metrics.jobs_completed == 8
    for rung in RUNGS:
        assert metrics.solves_by_rung.get(rung, 0) > 0, (
            f"rung {rung} never produced a plan: {metrics.solves_by_rung}"
        )
    assert metrics.breaker_opens >= 3  # each guarded rung tripped at least once
    assert metrics.as_dict()["breaker_opens"] == float(metrics.breaker_opens)
    # Plan history attributes each invocation to the rung that planned it.
    rungs_in_history = {rec.rung for rec in rm.plan_history}
    assert "greedy" in rungs_in_history


def test_ladder_exhaustion_raises_scheduling_error():
    from repro.core.schedule import SchedulingError

    config = LadderConfig(
        failure_threshold=10,
        chaos=InjectedSolverFailures(
            counts={"cp_full": 99, "cp_limited": 99, "edf": 99, "greedy": 99}
        ),
    )
    with pytest.raises(SchedulingError):
        _run_with_ladder(_jobs(1), config)


def test_proven_infeasible_does_not_trip_the_breaker():
    """INFEASIBLE is the instance's verdict, not a solver-health signal:
    the ladder escalates but the CP rungs' breakers stay closed."""
    from repro.cp.solution import SolveResult, SolveStatus

    class InfeasibleSolver:
        def solve(self, model, hint=None, **overrides):
            return SolveResult(SolveStatus.INFEASIBLE, None)

    config = LadderConfig(
        failure_threshold=1,
        cooldown=2,
        # Chaos keeps the heuristic rungs from touching the (absent) model.
        chaos=InjectedSolverFailures(counts={"edf": 5, "greedy": 5}),
    )
    ladder = DegradationLadder(config, solver=InfeasibleSolver())
    outcome = ladder.solve(model=None)
    assert outcome.solution is None
    assert ladder.breakers["cp_full"].state == CLOSED
    assert ladder.breakers["cp_full"].failures == 0
    assert ladder.breakers["cp_limited"].state == CLOSED
    # The chaos-forced edf failure is health-relevant and does count.
    assert ladder.breakers["edf"].state == OPEN


def test_budget_exhaustion_does_trip_the_breaker():
    from repro.cp.solution import SolveResult, SolveStatus

    class ExhaustedSolver:
        def solve(self, model, hint=None, **overrides):
            return SolveResult(SolveStatus.UNKNOWN, None)

    config = LadderConfig(
        failure_threshold=1,
        cooldown=2,
        chaos=InjectedSolverFailures(counts={"edf": 5, "greedy": 5}),
    )
    ladder = DegradationLadder(config, solver=ExhaustedSolver())
    ladder.solve(model=None)
    assert ladder.breakers["cp_full"].state == OPEN
    assert ladder.breakers["cp_limited"].state == OPEN


def test_ladder_snapshot_restore_round_trip():
    chaos = InjectedSolverFailures(counts={"cp_full": 5})
    config = LadderConfig(failure_threshold=1, cooldown=2, chaos=chaos)
    ladder = DegradationLadder(config, solver=None)
    ladder.breakers["cp_full"].record(False)
    chaos.take("cp_full")
    snap = ladder.snapshot()

    fresh_chaos = InjectedSolverFailures(counts={"cp_full": 5})
    fresh = DegradationLadder(
        LadderConfig(failure_threshold=1, cooldown=2, chaos=fresh_chaos),
        solver=None,
    )
    fresh.restore(snap)
    assert fresh.snapshot() == snap
    assert fresh.breakers["cp_full"].state == OPEN
    assert fresh_chaos.consumed == {"cp_full": 1}
