"""The ladder's ``start_rung`` entry point (the service overload fast-path)."""

from __future__ import annotations

import pytest

from repro.cp.solver import CpSolver, SolverParams
from repro.resilience.breaker import DegradationLadder, LadderConfig
from tests.conftest import two_job_single_machine_model


def ladder(**config) -> DegradationLadder:
    return DegradationLadder(
        LadderConfig(**config),
        CpSolver(SolverParams(time_limit=5.0, tree_fail_limit=100, use_lns=False)),
    )


def test_unknown_start_rung_rejected():
    with pytest.raises(ValueError, match="rung"):
        ladder().solve(two_job_single_machine_model(), start_rung="warp")


def test_default_start_is_cp_full():
    outcome = ladder().solve(two_job_single_machine_model())
    assert outcome.rung == "cp_full"


def test_start_rung_skips_higher_rungs():
    outcome = ladder().solve(
        two_job_single_machine_model(), start_rung="cp_limited"
    )
    assert outcome.solution is not None
    assert outcome.rung == "cp_limited"
    assert [r for r, _ in outcome.attempts] == ["cp_limited"]


def test_start_at_floor_rung():
    outcome = ladder().solve(two_job_single_machine_model(), start_rung="greedy")
    assert outcome.solution is not None
    assert outcome.rung == "greedy"


def test_skipped_rungs_not_charged_to_breakers():
    """Starting low must not touch the health record of the rungs above."""
    lad = ladder(failure_threshold=1)
    for _ in range(3):
        lad.solve(two_job_single_machine_model(), start_rung="edf")
    cp_full = lad.breakers["cp_full"]
    assert cp_full.state == "closed"
    assert cp_full.failures == 0
    # The attempted rung's breaker records the success as usual.
    assert lad.breakers["edf"].state == "closed"
    assert lad.opened_total == 0
