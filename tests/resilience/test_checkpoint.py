"""Checkpoint capture, atomic persistence, validation, and restore."""

import json
import os

import pytest

from repro.resilience.chaos import default_chaos_config
from repro.resilience.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    CheckpointMismatch,
    capture_snapshot,
    config_fingerprint,
    fresh_run_config,
    list_checkpoints,
    load_snapshot,
    restore_run,
    run_with_checkpoints,
    validate_snapshot,
    write_snapshot,
)
from repro.experiments.runner import build_live_run


def _config(**kw):
    return default_chaos_config(**kw)


def test_checkpoint_config_requires_a_cadence():
    with pytest.raises(ValueError):
        CheckpointConfig(every_events=None, every_sim_time=None)
    with pytest.raises(ValueError):
        CheckpointConfig(every_events=0)


def test_capture_snapshot_shape_and_fingerprint():
    config = _config()
    run = build_live_run(fresh_run_config(config), 0)
    for _ in range(10):
        assert run.sim.step()
    snap = capture_snapshot(run)
    validate_snapshot(snap)  # must not raise
    assert snap["schema"] == "repro-ckpt/1"
    assert snap["fingerprint"] == config_fingerprint(config, 0)
    assert snap["position"]["events_dispatched"] == 10
    assert snap["deterministic"] is True
    # Canonical JSON: a serialisation round trip is the identity.
    assert json.loads(json.dumps(snap, sort_keys=True)) == snap


def test_write_load_list_and_prune(tmp_path):
    config = _config()
    out = str(tmp_path / "ckpts")
    ckpt = CheckpointConfig(every_events=10, out_dir=out, keep=2)
    run = run_with_checkpoints(config, ckpt)
    assert run.metrics is not None  # drained normally
    assert len(run.snapshots) >= 3
    on_disk = list_checkpoints(out)
    assert len(on_disk) == 2  # keep=2 pruned the older files
    newest = load_snapshot(on_disk[-1])
    assert newest == run.snapshots[-1]
    # No temp droppings from the atomic writes.
    assert not [p for p in os.listdir(out) if ".tmp" in p]


def test_validate_rejects_wrong_schema_and_missing_keys():
    config = _config()
    run = build_live_run(fresh_run_config(config), 0)
    run.sim.step()
    snap = capture_snapshot(run)
    bad_schema = dict(snap, schema="repro-ckpt/999")
    with pytest.raises(CheckpointError, match="schema"):
        validate_snapshot(bad_schema)
    missing = {k: v for k, v in snap.items() if k != "position"}
    with pytest.raises(CheckpointError, match="position"):
        validate_snapshot(missing)


def test_restore_refuses_a_foreign_config():
    config = _config()
    run = build_live_run(fresh_run_config(config), 0)
    for _ in range(10):
        run.sim.step()
    snap = capture_snapshot(run)
    other = _config(seed=123)
    with pytest.raises(CheckpointMismatch, match="fingerprint"):
        restore_run(other, snap)


def test_restore_refuses_a_wrong_replication():
    config = _config()
    run = build_live_run(fresh_run_config(config), 0)
    for _ in range(10):
        run.sim.step()
    snap = capture_snapshot(run)
    with pytest.raises(CheckpointMismatch, match="replication"):
        restore_run(config, snap, replication=1)


def test_kill_and_restore_matches_uninterrupted_run(tmp_path):
    """The tentpole contract: killed at a checkpoint boundary + restored
    == never killed, down to the deterministic metric surface."""
    config = _config()
    reference = build_live_run(fresh_run_config(config), 0)
    ref_metrics = reference.finish()

    out = str(tmp_path / "ckpts")
    killed = run_with_checkpoints(
        config,
        CheckpointConfig(every_events=20, out_dir=out),
        kill_after_checkpoints=2,
    )
    assert killed.killed
    restored = restore_run(config, killed.paths[-1])
    assert restored.as_dict() == ref_metrics.as_dict()
    assert restored.jobs_completed == ref_metrics.jobs_completed


def test_restore_from_in_memory_snapshot_dict():
    config = _config()
    killed = run_with_checkpoints(
        config, CheckpointConfig(every_events=20), kill_after_checkpoints=1
    )
    assert killed.killed and not killed.paths  # nothing persisted
    restored = restore_run(config, killed.snapshots[-1])
    reference = build_live_run(fresh_run_config(config), 0).finish()
    assert restored.as_dict() == reference.as_dict()


def test_sim_time_cadence_checkpoints():
    config = _config()
    ckpt = CheckpointConfig(every_events=None, every_sim_time=15.0)
    run = run_with_checkpoints(config, ckpt)
    assert run.metrics is not None
    assert len(run.snapshots) >= 2
    times = [s["position"]["sim_now"] for s in run.snapshots]
    assert times == sorted(times)
    assert all(b - a >= 15.0 for a, b in zip(times, times[1:]))


def test_fresh_run_config_resets_mutated_clock_state():
    """Reusing one config object across runs must not leak PinnedClock
    ticks (that would fork O between a restore and its reference)."""
    config = _config()
    first = build_live_run(fresh_run_config(config), 0)
    m1 = first.finish()
    second = build_live_run(fresh_run_config(config), 0)
    m2 = second.finish()
    assert m1.as_dict() == m2.as_dict()


def test_compare_states_mismatch_renders_paths_with_both_values():
    """A replay fork names the divergent paths and shows both sides."""
    from repro.resilience.checkpoint import _compare_states

    expected = {
        "position": {"events_dispatched": 40, "sim_now": 8.0, "seq": 41},
        "state": {"jobs": {"1": {"phase": "MAP"}}, "clock": 3},
    }
    replayed = {
        "position": dict(expected["position"]),
        "state": {"jobs": {"1": {"phase": "REDUCE"}}, "clock": 5},
    }
    with pytest.raises(CheckpointMismatch) as exc:
        _compare_states(expected, replayed)
    message = str(exc.value)
    assert "state diverged" in message and "2 path(s)" in message
    assert "jobs.1.phase: snapshot='MAP' replay='REDUCE'" in message
    assert "clock: snapshot=3 replay=5" in message


def test_compare_states_mismatch_elides_past_the_path_budget():
    from repro.resilience.checkpoint import (
        _MISMATCH_PATHS_SHOWN,
        _compare_states,
    )

    n = _MISMATCH_PATHS_SHOWN + 4
    expected = {"position": {}, "state": {str(i): i for i in range(n)}}
    replayed = {"position": {}, "state": {str(i): -i - 1 for i in range(n)}}
    with pytest.raises(CheckpointMismatch, match=r"\(\+4 more\)"):
        _compare_states(expected, replayed)
