"""Chaos scenarios as tests (CI ``chaos-smoke``; excluded from tier-1).

Each scenario is self-verifying -- it returns a :class:`ChaosReport`
whose ``violations`` list every broken contract -- so the tests assert
on the report rather than re-deriving the checks.
"""

import pytest

from repro.resilience.chaos import (
    default_chaos_config,
    escalation_ladder,
    kill_restore_cycle,
    overload_burst,
    pool_worker_death,
)

pytestmark = pytest.mark.chaos


def test_kill_restore_cycle_is_byte_identical(tmp_path):
    report = kill_restore_cycle(out_dir=str(tmp_path / "ckpts"))
    assert report.passed, report.summary()
    assert report.details["checkpoints"] >= 2
    assert report.details["restored_ontp"] == report.details["reference_ontp"]


def test_kill_restore_cycle_in_memory():
    """Same contract without persistence (snapshot dict instead of file)."""
    report = kill_restore_cycle(kill_after_checkpoints=1)
    assert report.passed, report.summary()


def test_overload_burst_walks_the_ladder_and_stays_deterministic():
    report = overload_burst()
    assert report.passed, report.summary()
    rungs = report.details["solves_by_rung"]
    assert set(rungs) == {"cp_full", "cp_limited", "edf", "greedy"}
    assert report.details["breaker_opens"] >= 1


def test_overload_burst_with_faults_and_ladder():
    """Faults + overload + a failing solver at once: the harshest mix."""
    config = default_chaos_config(
        seed=7, faults=True, ladder=escalation_ladder()
    )
    report = overload_burst(config=config)
    # The explicit config keeps the default contract except the all-rungs
    # requirement (fault timing may change the invocation count), so only
    # assert the invariants and determinism held.
    hard_violations = [
        v for v in report.violations if "never used rungs" not in v
    ]
    assert not hard_violations, report.summary()


def test_pool_worker_death_recovers_byte_identically(tmp_path):
    report = pool_worker_death(str(tmp_path / "sweeps"))
    assert report.passed, report.summary()
    assert report.details["retried_cells"] >= 1
