"""Property: batching never changes admission verdicts.

The acceptance criterion of the service design -- each candidate is
quoted at the ceiling of its *own* arrival tick, in submission order --
makes the admitted set independent of how arrivals are coalesced.  The
property drives the same seeded stream through batch sizes 1, 4 and 32
(and a hypothesis-chosen size) and requires byte-identical canonical
verdicts.

The overload fast-path (``cp_limited`` above ``overload_queue_depth``)
is deliberately disabled here: it is an explicit, documented
latency/quality trade that depends on queue depth, which batch size
does affect.  See docs/SERVICE.md.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.service.batching import BatchingConfig
from repro.service.loadgen import LoadProfile, run_inprocess
from repro.service.server import ServiceConfig


def run_with_batch(seed: int, requests: int, batch_size: int,
                   hold: float = 0.05) -> "tuple":
    config = ServiceConfig(
        batching=BatchingConfig(
            max_batch_size=batch_size,
            max_hold_seconds=hold,
            max_pending=10_000,
            overload_queue_depth=10_000_000,
        )
    )
    report = run_inprocess(
        LoadProfile(requests=requests, seed=seed), config=config
    )
    admitted = frozenset(q.job_id for q in report.quotes if q.admitted)
    return report.digest, admitted


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_batch_sizes_1_4_32_agree(seed):
    baseline_digest, baseline_admitted = run_with_batch(seed, 24, 1)
    for batch_size in (4, 32):
        digest, admitted = run_with_batch(seed, 24, batch_size)
        assert digest == baseline_digest, (
            f"batch_size={batch_size} changed verdicts for seed={seed}"
        )
        assert admitted == baseline_admitted


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    batch_size=st.integers(min_value=1, max_value=64),
    hold=st.sampled_from([0.0, 0.01, 0.05, 0.5]),
)
def test_arbitrary_batching_configs_agree(seed, batch_size, hold):
    """Hold time and batch size together never change a verdict either."""
    baseline_digest, _ = run_with_batch(seed, 16, 1, hold=0.05)
    digest, _ = run_with_batch(seed, 16, batch_size, hold=hold)
    assert digest == baseline_digest
