"""Sync core, asyncio shell, and HTTP endpoint of the scheduler service."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.clocks import ManualServiceClock
from repro.obs.export import validate_openmetrics
from repro.obs.timeseries import WallSeriesSampler, read_series_jsonl
from repro.service.admission import AdmissionConfig
from repro.service.batching import BatchingConfig
from repro.service.loadgen import _http_json
from repro.service.schemas import JobSpec
from repro.service.server import SchedulerService, ServiceConfig
from repro.workload.entities import make_uniform_cluster


def service(clock=None, sampler=None, **batching) -> SchedulerService:
    base = dict(max_batch_size=4, max_hold_seconds=1.0, max_pending=6,
                overload_queue_depth=5)
    base.update(batching)
    return SchedulerService(
        resources=make_uniform_cluster(1, 1, 1),
        config=ServiceConfig(
            batching=BatchingConfig(**base), admission=AdmissionConfig()
        ),
        clock=clock or ManualServiceClock(),
        sampler=sampler,
    )


def spec(job_id: str, maps=(10,), deadline=100) -> JobSpec:
    return JobSpec(job_id=job_id, map_durations=tuple(maps), deadline=deadline)


class TestSyncCore:
    def test_submit_queues_until_pump(self):
        svc = service()
        assert svc.submit_sync(spec("a")) is None
        assert svc.status_sync("a").state == "pending"
        svc.clock.advance(1.0)
        quotes = svc.pump()
        assert [q.job_id for q in quotes] == ["a"]
        assert quotes[0].admitted

    def test_full_batch_quotes_without_waiting(self):
        svc = service(max_batch_size=2)
        svc.submit_sync(spec("a"))
        svc.submit_sync(spec("b", deadline=200))
        # No clock advance needed: the full batch is due immediately.
        assert [q.job_id for q in svc.pump()] == ["a", "b"]

    def test_invalid_payload_quoted_immediately(self):
        quote = service().submit_sync({"job_id": "bad", "map_durations": []})
        assert quote is not None and quote.reason == "invalid"

    def test_duplicate_of_queued_job_rejected(self):
        svc = service()
        assert svc.submit_sync(spec("a")) is None
        dup = svc.submit_sync(spec("a"))
        assert dup is not None and dup.reason == "invalid"

    def test_overload_sheds_above_max_pending(self):
        svc = service(max_pending=2, max_batch_size=10)
        assert svc.submit_sync(spec("a")) is None
        assert svc.submit_sync(spec("b")) is None
        shed = svc.submit_sync(spec("c"))
        assert shed is not None and shed.reason == "overload_shed"

    def test_drain_quotes_everything_pending(self):
        svc = service(max_batch_size=10)
        for i in range(3):
            svc.submit_sync(spec(f"j{i}", deadline=500))
        assert len(svc.drain()) == 3
        assert len(svc.batcher) == 0

    def test_cancel_before_plan_race(self):
        """A job cancelled while still queued must never reach the solver."""
        svc = service()
        assert svc.submit_sync(spec("a")) is None
        assert svc.cancel_sync("a")
        assert svc.status_sync("a").state == "cancelled"
        svc.clock.advance(10.0)
        assert svc.pump() == []  # nothing left to quote
        # And the slot was never committed: a conflicting job fits.
        assert svc.submit_sync(spec("b", maps=(50,), deadline=60)) is None
        assert svc.drain()[0].admitted

    def test_cancel_after_plan_goes_to_controller(self):
        svc = service(max_batch_size=1)
        svc.submit_sync(spec("a", maps=(50,), deadline=60))
        svc.pump()
        assert svc.status_sync("a").state == "admitted"
        assert svc.cancel_sync("a")
        assert svc.status_sync("a").state == "cancelled"

    def test_unknown_job_status_is_none(self):
        assert service().status_sync("ghost") is None

    def test_health_payload(self):
        svc = service()
        svc.submit_sync(spec("a"))
        health = svc.health()
        assert health["status"] == "ok"
        assert health["pending"] == 1
        assert health["committed"] == 0

    def test_metrics_text_is_valid_openmetrics(self):
        svc = service(max_batch_size=1)
        svc.submit_sync(spec("a"))
        svc.pump()
        errors = validate_openmetrics(svc.metrics_text())
        assert errors == []


class TestOverloadFastPath:
    def test_deep_queue_starts_at_cp_limited(self):
        svc = service(max_batch_size=2, overload_queue_depth=2, max_pending=20)
        for i in range(6):
            svc.submit_sync(spec(f"j{i}", deadline=1000))
        quotes = svc.pump()  # queue stays deep behind each flushed batch
        assert any(q.rung == "cp_limited" for q in quotes if q.admitted)


class TestWallSampler:
    def test_pump_samples_on_cadence(self, tmp_path):
        sampler = WallSeriesSampler(interval=1.0)
        svc = service(sampler=sampler, max_batch_size=1)
        svc.submit_sync(spec("a"))
        svc.pump()
        svc.clock.advance(5.0)
        svc.submit_sync(spec("b", deadline=300))
        svc.pump()
        assert len(sampler.store) == 2
        probes = sampler.store.samples[-1]["probes"]
        assert "service.pending" in probes
        assert "service.committed" in probes
        path = tmp_path / "series.jsonl"
        sampler.write_series(str(path))
        meta, samples = read_series_jsonl(str(path))
        assert meta["axis"] == "wall"
        assert len(samples) == 2

    def test_within_interval_not_resampled(self):
        sampler = WallSeriesSampler(interval=10.0)
        svc = service(sampler=sampler, max_batch_size=1)
        svc.submit_sync(spec("a"))
        svc.pump()
        svc.clock.advance(1.0)
        svc.submit_sync(spec("b", deadline=300))
        svc.pump()
        assert len(sampler.store) == 1


class TestAsyncShell:
    def test_submit_resolves_when_batch_flushes(self):
        async def run():
            svc = SchedulerService(
                resources=make_uniform_cluster(1, 1, 1),
                config=ServiceConfig(
                    batching=BatchingConfig(
                        max_batch_size=8, max_hold_seconds=0.01
                    )
                ),
            )
            await svc.start()
            quote = await asyncio.wait_for(svc.submit(spec("a")), timeout=5.0)
            await svc.close()
            return quote

        quote = asyncio.run(run())
        assert quote.admitted

    def test_close_drains_pending_submissions(self):
        async def run():
            svc = SchedulerService(
                resources=make_uniform_cluster(1, 1, 1),
                config=ServiceConfig(
                    batching=BatchingConfig(
                        max_batch_size=100, max_hold_seconds=60.0
                    )
                ),
            )
            await svc.start()
            task = asyncio.create_task(svc.submit(spec("a")))
            await asyncio.sleep(0.01)  # let the submit park on its future
            await svc.close()
            return await asyncio.wait_for(task, timeout=5.0)

        quote = asyncio.run(run())
        assert quote.job_id == "a"
        assert quote.admitted

    def test_async_cancel_before_plan_resolves_submitter(self):
        async def run():
            svc = SchedulerService(
                resources=make_uniform_cluster(1, 1, 1),
                config=ServiceConfig(
                    batching=BatchingConfig(
                        max_batch_size=100, max_hold_seconds=60.0
                    )
                ),
            )
            await svc.start()
            task = asyncio.create_task(svc.submit(spec("a")))
            await asyncio.sleep(0.01)
            cancelled = await svc.cancel("a")
            quote = await asyncio.wait_for(task, timeout=5.0)
            await svc.close()
            return cancelled, quote

        cancelled, quote = asyncio.run(run())
        assert cancelled
        assert not quote.admitted and quote.reason == "cancelled"


class TestHttpEndpoint:
    def test_full_http_session(self):
        async def run():
            svc = SchedulerService(
                resources=make_uniform_cluster(2, 2, 2),
                config=ServiceConfig(
                    batching=BatchingConfig(
                        max_batch_size=8, max_hold_seconds=0.01
                    ),
                    port=0,
                ),
            )
            serve_task = asyncio.create_task(svc.serve())
            while svc.bound_port is None:
                await asyncio.sleep(0.01)
            port = svc.bound_port
            results = {}
            results["health"] = await _http_json(
                "127.0.0.1", port, "GET", "/health"
            )
            results["submit"] = await _http_json(
                "127.0.0.1", port, "POST", "/submit",
                spec("j1", maps=(5, 5), deadline=60).as_dict(),
            )
            results["status"] = await _http_json(
                "127.0.0.1", port, "GET", "/status/j1"
            )
            results["missing"] = await _http_json(
                "127.0.0.1", port, "GET", "/status/ghost"
            )
            results["bad_json"] = await _http_json(
                "127.0.0.1", port, "POST", "/submit", None
            )
            results["cancel"] = await _http_json(
                "127.0.0.1", port, "POST", "/cancel/j1"
            )
            results["shutdown"] = await _http_json(
                "127.0.0.1", port, "POST", "/shutdown"
            )
            await asyncio.wait_for(serve_task, timeout=5.0)
            await asyncio.sleep(0.05)  # let finished handler tasks settle
            leftovers = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task() and not t.done()
            ]
            return results, leftovers

        results, leftovers = asyncio.run(run())
        assert results["health"][0] == 200
        status, quote = results["submit"]
        assert status == 200 and quote["admitted"] is True
        assert results["status"][1]["state"] == "admitted"
        assert results["missing"][0] == 404
        assert results["bad_json"][1]["reason"] == "invalid"
        assert results["cancel"] == (200, {"cancelled": True})
        assert results["shutdown"][1] == {"status": "shutting down"}
        # Clean shutdown: no orphan tasks survive the serve() return.
        assert leftovers == []


class TestJsonOverHttpParity:
    def test_quote_round_trips_through_json(self):
        svc = service(max_batch_size=1)
        svc.submit_sync(spec("a"))
        (quote,) = svc.pump()
        from repro.service.schemas import SlaQuote

        assert SlaQuote.from_dict(
            json.loads(json.dumps(quote.as_dict()))
        ).verdict_key() == quote.verdict_key()
