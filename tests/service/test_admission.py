"""Schedule-once admission control: quotes, commitments, lifecycle."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.schemas import JobSpec
from repro.workload.entities import make_uniform_cluster


def controller(num_resources: int = 1, registry=None) -> AdmissionController:
    return AdmissionController(
        make_uniform_cluster(num_resources, 1, 1),
        AdmissionConfig(),
        registry=registry,
    )


def spec(job_id: str, maps=(10,), reduces=(), deadline=100, earliest=0) -> JobSpec:
    return JobSpec(
        job_id=job_id,
        map_durations=tuple(maps),
        reduce_durations=tuple(reduces),
        earliest_start=earliest,
        deadline=deadline,
    )


class TestQuoting:
    def test_feasible_job_admitted(self):
        q = controller().quote(spec("a"), arrival=0.0)
        assert q.admitted and q.reason == "deadline_met"
        assert q.predicted_completion == 10
        assert q.deadline == 100
        assert q.rung == "cp_full"

    def test_impossible_deadline_rejected(self):
        # 3 sequential 10s maps on one slot cannot finish within 15s.
        q = controller().quote(spec("a", maps=(10, 10, 10), deadline=15), 0.0)
        assert not q.admitted
        assert q.reason == "deadline_missed"
        assert q.predicted_completion is not None
        assert q.predicted_completion > q.deadline

    def test_quote_anchors_at_arrival_ceiling(self):
        q = controller().quote(spec("a"), arrival=4.2)
        assert q.arrival == 5
        assert q.predicted_completion == 15  # starts at t=5

    def test_committed_work_occupies_slots(self):
        c = controller()
        assert c.quote(spec("a", maps=(50,), deadline=60), 0.0).admitted
        # Second job needs the single map slot for 50s starting now; the
        # committed job holds it until t=50, so a 40s deadline is unmeetable.
        q = c.quote(spec("b", maps=(10,), deadline=40), 0.0)
        assert not q.admitted
        assert q.reason == "deadline_missed"

    def test_completed_work_is_evicted(self):
        c = controller()
        assert c.quote(spec("a", maps=(50,), deadline=60), 0.0).admitted
        # Same conflicting job, but arriving after the committed job ended.
        q = c.quote(spec("b", maps=(10,), deadline=40), 55.0)
        assert q.admitted

    def test_duplicate_submission_rejected(self):
        c = controller()
        assert c.quote(spec("a"), 0.0).admitted
        dup = c.quote(spec("a"), 1.0)
        assert not dup.admitted and dup.reason == "duplicate"

    def test_resubmit_after_rejection_is_duplicate(self):
        c = controller()
        c.quote(spec("a", maps=(10, 10, 10), deadline=15), 0.0)
        assert c.quote(spec("a"), 1.0).reason == "duplicate"

    def test_invalid_and_shed_paths(self):
        c = controller()
        bad = c.invalid("x", 0.0, "no tasks")
        assert not bad.admitted and bad.reason == "invalid"
        shed = c.shed(spec("y"), 3.0)
        assert not shed.admitted and shed.reason == "overload_shed"
        assert shed.arrival == 3

    def test_unknown_start_rung_rejected(self):
        with pytest.raises(ValueError, match="rung"):
            controller().quote(spec("a"), 0.0, start_rung="warp")

    def test_overload_start_rung_still_quotes(self):
        q = controller().quote(spec("a"), 0.0, start_rung="cp_limited")
        assert q.admitted
        assert q.rung == "cp_limited"


class TestCancellation:
    def test_cancel_frees_committed_slots(self):
        c = controller()
        assert c.quote(spec("a", maps=(50,), deadline=60), 0.0).admitted
        assert c.cancel("a", now=1.0)
        # The slot is free again: the conflicting job now fits.
        assert c.quote(spec("b", maps=(10,), deadline=40), 1.0).admitted

    def test_cancel_unknown_job_is_false(self):
        assert not controller().cancel("nope", 0.0)

    def test_cancel_completed_job_is_false(self):
        c = controller()
        assert c.quote(spec("a", maps=(5,), deadline=60), 0.0).admitted
        assert not c.cancel("a", now=50.0)

    def test_double_cancel_is_false(self):
        c = controller()
        assert c.quote(spec("a", maps=(50,), deadline=60), 0.0).admitted
        assert c.cancel("a", 1.0)
        assert not c.cancel("a", 2.0)


class TestStatus:
    def test_unknown_job_has_no_status(self):
        assert controller().status("nope", 0.0) is None

    def test_admitted_then_completed_lifecycle(self):
        c = controller()
        c.quote(spec("a", maps=(10,), deadline=100), 0.0)
        st = c.status("a", 1.0)
        assert st is not None and st.state == "admitted"
        assert st.planned == [("a-m0", 0, 10)]
        done = c.status("a", 20.0)
        assert done is not None and done.state == "completed"
        assert done.planned == []

    def test_rejected_job_status(self):
        c = controller()
        c.quote(spec("a", maps=(10, 10, 10), deadline=15), 0.0)
        st = c.status("a", 1.0)
        assert st is not None and st.state == "rejected"
        assert st.quote is not None and st.quote.reason == "deadline_missed"

    def test_cancelled_job_status(self):
        c = controller()
        c.quote(spec("a", maps=(50,), deadline=60), 0.0)
        c.cancel("a", 1.0)
        st = c.status("a", 2.0)
        assert st is not None and st.state == "cancelled"


class TestMetrics:
    def test_counters_track_decisions(self):
        registry = MetricsRegistry()
        c = controller(registry=registry)
        c.quote(spec("a"), 0.0)
        c.quote(spec("b", maps=(10, 10, 10), deadline=15), 0.0)
        c.shed(spec("c"), 0.0)
        counters = registry.as_dict()
        assert counters["service.requests"] == 3
        assert counters["service.admitted"] == 1
        assert counters["service.rejected"] == 2  # deadline miss + shed
        assert counters["service.shed"] == 1
        assert counters["service.committed_jobs"] == 1.0
        hist = counters["service.admission_latency_ms"]
        assert hist["count"] == 3
