"""Determinism and reporting of the load harness."""

from __future__ import annotations

import json

from repro.service.batching import BatchingConfig
from repro.service.loadgen import (
    LoadProfile,
    _percentile,
    generate_request_stream,
    run_inprocess,
)
from repro.service.server import ServiceConfig


class TestStreamGeneration:
    def test_stream_is_seed_deterministic(self):
        a = generate_request_stream(LoadProfile(requests=20, seed=4))
        b = generate_request_stream(LoadProfile(requests=20, seed=4))
        assert [(t, s.as_dict()) for t, s in a] == [(t, s.as_dict()) for t, s in b]

    def test_different_seeds_differ(self):
        a = generate_request_stream(LoadProfile(requests=20, seed=4))
        b = generate_request_stream(LoadProfile(requests=20, seed=5))
        assert [(t, s.as_dict()) for t, s in a] != [(t, s.as_dict()) for t, s in b]

    def test_specs_are_valid_and_relative(self):
        for arrival, spec in generate_request_stream(LoadProfile(requests=20)):
            spec.validate()
            assert arrival >= 0.0
            assert spec.deadline > spec.earliest_start >= 0


class TestPercentile:
    def test_empty_is_zero(self):
        assert _percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 0.50) == 50.0
        assert _percentile(values, 0.99) == 99.0
        assert _percentile(values, 1.0) == 100.0

    def test_single_value(self):
        assert _percentile([7.0], 0.99) == 7.0


class TestInprocessRun:
    def test_replay_is_byte_identical(self):
        profile = LoadProfile(requests=30, seed=9)
        a = run_inprocess(profile)
        b = run_inprocess(profile)
        assert a.digest == b.digest
        assert a.as_dict() == b.as_dict()

    def test_produces_mixed_verdicts(self):
        report = run_inprocess(LoadProfile(requests=60, seed=1))
        assert report.requests == 60
        assert report.admitted >= 1
        assert report.rejected >= 1
        assert report.admitted + report.rejected + report.shed == 60

    def test_latency_bounded_by_hold_time(self):
        config = ServiceConfig(
            batching=BatchingConfig(max_batch_size=8, max_hold_seconds=0.05)
        )
        report = run_inprocess(LoadProfile(requests=30, seed=9), config=config)
        # Client-observed latency on the service axis is the batching hold,
        # never more than the configured bound.
        assert report.latency_max <= 0.05 + 1e-9

    def test_report_serialisable(self):
        report = run_inprocess(LoadProfile(requests=10, seed=2))
        data = json.loads(json.dumps(report.as_dict(include_quotes=True)))
        assert data["requests"] == 10
        assert len(data["quotes"]) == 10
        assert data["histogram"]["count"] == 10
