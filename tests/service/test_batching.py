"""Hold-time/batch-size bounds and shedding of the arrival batcher."""

from __future__ import annotations

import pytest

from repro.service.batching import ArrivalBatcher, BatchingConfig
from repro.service.schemas import JobSpec


def spec(i: int) -> JobSpec:
    return JobSpec(job_id=f"j{i}", map_durations=(5,), deadline=60)


def batcher(**overrides) -> ArrivalBatcher:
    base = dict(max_batch_size=4, max_hold_seconds=0.05, max_pending=8,
                overload_queue_depth=6)
    base.update(overrides)
    return ArrivalBatcher(BatchingConfig(**base))


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(max_batch_size=0), dict(max_hold_seconds=-1.0),
         dict(max_pending=0)],
    )
    def test_bad_bounds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            batcher(**kwargs)


class TestFlushBounds:
    def test_idle_batcher_has_no_deadline(self):
        b = batcher()
        assert b.due_at() is None
        assert b.flush_due(100.0) == []

    def test_hold_time_bounds_oldest_entry(self):
        b = batcher()
        assert b.offer(spec(1), now=10.0, seq=1)
        assert b.due_at() == pytest.approx(10.05)
        # Not yet due: nothing flushes.
        assert b.flush_due(10.04) == []
        batch = b.flush_due(10.05)
        assert [e.spec.job_id for e in batch] == ["j1"]
        assert len(b) == 0

    def test_full_batch_due_immediately(self):
        b = batcher(max_batch_size=3)
        for i in range(3):
            b.offer(spec(i), now=10.0 + i * 0.001, seq=i)
        # Due time collapses to the oldest offer, i.e. already due.
        assert b.due_at() == pytest.approx(10.0)
        batch = b.flush_due(10.002)
        assert [e.spec.job_id for e in batch] == ["j0", "j1", "j2"]

    def test_flush_takes_at_most_one_batch(self):
        b = batcher(max_batch_size=2, max_hold_seconds=0.0)
        for i in range(5):
            b.offer(spec(i), now=1.0, seq=i)
        assert [e.spec.job_id for e in b.flush_due(1.0)] == ["j0", "j1"]
        assert len(b) == 3

    def test_flush_order_is_submission_order(self):
        b = batcher(max_batch_size=8, max_hold_seconds=0.0)
        for i in (3, 1, 2):
            b.offer(spec(i), now=1.0, seq=i)
        assert [e.seq for e in b.flush_due(1.0)] == [1, 2, 3]

    def test_flush_all_drains_everything(self):
        b = batcher(max_batch_size=2)
        for i in range(5):
            b.offer(spec(i), now=1.0, seq=i)
        assert len(b.flush_all()) == 5
        assert len(b) == 0
        assert b.flushed_total == 5


class TestOverloadShedding:
    def test_offer_sheds_above_max_pending(self):
        b = batcher(max_pending=2)
        assert b.offer(spec(1), 1.0, 1)
        assert b.offer(spec(2), 1.0, 2)
        assert not b.offer(spec(3), 1.0, 3)
        assert b.shed_total == 1
        assert len(b) == 2

    def test_overloaded_flag_tracks_queue_depth(self):
        b = batcher(overload_queue_depth=2, max_batch_size=10)
        assert not b.overloaded
        b.offer(spec(1), 1.0, 1)
        assert not b.overloaded
        b.offer(spec(2), 1.0, 2)
        assert b.overloaded


class TestCancel:
    def test_cancel_before_flush_removes_entry(self):
        b = batcher()
        b.offer(spec(1), 1.0, 1)
        b.offer(spec(2), 1.0, 2)
        assert b.cancel("j1")
        assert "j1" not in b
        assert [e.spec.job_id for e in b.flush_all()] == ["j2"]

    def test_cancel_unknown_is_false(self):
        assert not batcher().cancel("nope")

    def test_cancelled_oldest_entry_moves_deadline(self):
        b = batcher()
        b.offer(spec(1), 1.0, 1)
        b.offer(spec(2), 2.0, 2)
        assert b.due_at() == pytest.approx(1.05)
        b.cancel("j1")
        assert b.due_at() == pytest.approx(2.05)
