"""Edge validation and JSON round-tripping of the service payloads."""

from __future__ import annotations

import pytest

from repro.service.schemas import (
    SERVICE_SCHEMA,
    JobSpec,
    JobStatus,
    SlaQuote,
    ValidationError,
    verdict_digest,
)
from repro.workload.entities import TaskKind


def spec(**overrides) -> JobSpec:
    base = dict(
        job_id="j1",
        map_durations=(5, 7),
        reduce_durations=(3,),
        earliest_start=0,
        deadline=60,
    )
    base.update(overrides)
    return JobSpec(**base)


class TestJobSpecValidation:
    def test_valid_spec_passes(self):
        spec().validate()

    def test_empty_job_id_rejected(self):
        with pytest.raises(ValidationError, match="job_id"):
            spec(job_id="").validate()

    def test_no_tasks_rejected(self):
        with pytest.raises(ValidationError, match="no tasks"):
            spec(map_durations=(), reduce_durations=()).validate()

    @pytest.mark.parametrize("bad", [0, -3])
    def test_nonpositive_duration_rejected(self, bad):
        with pytest.raises(ValidationError, match="positive"):
            spec(map_durations=(5, bad)).validate()

    def test_negative_earliest_start_rejected(self):
        with pytest.raises(ValidationError, match="earliest_start"):
            spec(earliest_start=-1).validate()

    def test_deadline_must_exceed_earliest_start(self):
        with pytest.raises(ValidationError, match="deadline"):
            spec(earliest_start=30, deadline=30).validate()

    def test_map_only_job_is_valid(self):
        spec(reduce_durations=()).validate()


class TestJobSpecConversion:
    def test_to_job_anchors_at_arrival(self):
        job = spec(earliest_start=10, deadline=100).to_job(7, arrival=50)
        assert job.id == 7
        assert job.arrival_time == 50
        assert job.earliest_start == 60
        assert job.deadline == 150
        assert [t.duration for t in job.map_tasks] == [5, 7]
        assert [t.duration for t in job.reduce_tasks] == [3]
        assert all(t.kind is TaskKind.MAP for t in job.map_tasks)
        assert all(t.kind is TaskKind.REDUCE for t in job.reduce_tasks)
        assert job.map_tasks[0].id == "j1-m0"

    def test_round_trip(self):
        original = spec()
        restored = JobSpec.from_dict(original.as_dict())
        assert restored == original

    def test_from_dict_rejects_unknown_schema(self):
        data = spec().as_dict()
        data["schema"] = "repro-service/99"
        with pytest.raises(ValidationError, match="schema"):
            JobSpec.from_dict(data)

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValidationError):
            JobSpec.from_dict({"schema": SERVICE_SCHEMA})

    def test_from_dict_validates(self):
        data = spec(deadline=0).as_dict()
        with pytest.raises(ValidationError, match="deadline"):
            JobSpec.from_dict(data)


def quote(**overrides) -> SlaQuote:
    base = dict(
        job_id="j1",
        admitted=True,
        reason="deadline_met",
        predicted_completion=40,
        deadline=60,
        rung="cp_full",
        solve_ms=1.25,
        arrival=10,
    )
    base.update(overrides)
    return SlaQuote(**base)


class TestSlaQuote:
    def test_round_trip(self):
        restored = SlaQuote.from_dict(quote().as_dict())
        assert restored == quote()

    def test_round_trip_with_nones(self):
        q = quote(admitted=False, reason="overload_shed",
                  predicted_completion=None, deadline=None, rung="none")
        assert SlaQuote.from_dict(q.as_dict()) == q

    def test_verdict_key_excludes_wall_time(self):
        assert quote(solve_ms=1.0).verdict_key() == quote(solve_ms=99.0).verdict_key()

    def test_verdict_key_sees_decisions(self):
        assert quote().verdict_key() != quote(admitted=False).verdict_key()
        assert quote().verdict_key() != quote(predicted_completion=41).verdict_key()
        assert quote().verdict_key() != quote(rung="edf").verdict_key()


class TestVerdictDigest:
    def test_order_insensitive(self):
        a, b = quote(job_id="a"), quote(job_id="b")
        assert verdict_digest([a, b]) == verdict_digest([b, a])

    def test_wall_time_invariant(self):
        assert verdict_digest([quote(solve_ms=1.0)]) == verdict_digest(
            [quote(solve_ms=50.0)]
        )

    def test_decision_sensitive(self):
        assert verdict_digest([quote()]) != verdict_digest(
            [quote(admitted=False, reason="deadline_missed")]
        )


class TestJobStatus:
    def test_round_trip(self):
        status = JobStatus("j1", "admitted", quote(), planned=[("j1-m0", 10, 15)])
        restored = JobStatus.from_dict(status.as_dict())
        assert restored.job_id == "j1"
        assert restored.state == "admitted"
        assert restored.quote == quote()
        assert restored.planned == [("j1-m0", 10, 15)]

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="state"):
            JobStatus("j1", "limbo")
