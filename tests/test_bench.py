"""Benchmark regression harness: schema, determinism, comparison, CLI."""

import copy
import json

import pytest

from repro.bench import (
    CASES,
    DEFAULT_BASELINE,
    SCHEMA,
    WALL_EXEMPT,
    compare,
    load_result,
    main,
    run_suite,
    write_result,
)


@pytest.fixture(scope="module")
def suite_result():
    """One smoke-mode suite run shared across the module's tests."""
    return run_suite(smoke=True)


def test_result_schema(suite_result):
    assert suite_result["schema"] == SCHEMA
    assert suite_result["smoke"] is True
    assert suite_result["calibration_time"] > 0
    assert set(suite_result["cases"]) == set(CASES)
    for name, case in suite_result["cases"].items():
        assert case["wall"] > 0
        if name in WALL_EXEMPT:
            assert case["normalized_time"] == 0.0  # wall gate skips these
        else:
            assert case["normalized_time"] > 0
        assert isinstance(case["metrics"], dict) and case["metrics"]
    env = suite_result["env"]
    assert "python" in env and "platform" in env


def test_cases_track_real_effort(suite_result):
    """The pinned cases must exercise the solver, not trivially pass."""
    solve = suite_result["cases"]["solver_micro_solve"]["metrics"]
    assert solve["fails"] > 0 and solve["branches"] > 0
    assert suite_result["cases"]["fig7_small"]["metrics"]["N"] > 0


def test_self_compare_passes(suite_result):
    assert compare(suite_result, suite_result) == []


def test_inflate_two_x_fails(suite_result):
    failures = compare(suite_result, suite_result, inflate=2.0)
    assert len(failures) == len(CASES) - len(WALL_EXEMPT)
    assert all("normalized time" in f for f in failures)


def test_metric_drift_detected(suite_result):
    drifted = copy.deepcopy(suite_result)
    drifted["cases"]["solver_micro_solve"]["metrics"]["objective"] += 1
    failures = compare(drifted, suite_result)
    assert any("objective" in f and "changed" in f for f in failures)


def test_missing_case_detected(suite_result):
    partial = copy.deepcopy(suite_result)
    del partial["cases"]["fig2_small"]
    failures = compare(partial, suite_result)
    assert any("missing" in f for f in failures)


def test_schema_mismatch_detected(suite_result):
    alien = dict(suite_result, schema="other/9")
    failures = compare(alien, suite_result)
    assert failures and "schema mismatch" in failures[0]


def test_committed_baseline_matches_current_behaviour(suite_result):
    """Deterministic metrics must equal the committed BENCH_core.json.

    Wall-time failures are excluded here (a loaded CI box can be slow);
    the metric comparison is the behaviour contract and must hold anywhere.
    """
    baseline = load_result(DEFAULT_BASELINE)
    assert baseline["schema"] == SCHEMA
    failures = [
        f for f in compare(suite_result, baseline) if "normalized time" not in f
    ]
    assert failures == []


def test_cli_replay_roundtrip(tmp_path, capsys):
    """`--replay` compares a written result without re-running the suite."""
    baseline = tmp_path / "baseline.json"
    result = load_result(DEFAULT_BASELINE)
    write_result(str(baseline), result)
    replay = tmp_path / "current.json"
    write_result(str(replay), result)
    assert main(["--replay", str(replay), "--baseline", str(baseline)]) == 0
    assert "ok:" in capsys.readouterr().out
    # synthetic 2x slowdown must trip the harness
    assert (
        main(
            ["--replay", str(replay), "--baseline", str(baseline),
             "--inflate", "2.0"]
        )
        == 1
    )
    assert "REGRESSION" in capsys.readouterr().err


def test_cli_missing_baseline(tmp_path, capsys):
    replay = tmp_path / "current.json"
    write_result(str(replay), load_result(DEFAULT_BASELINE))
    missing = tmp_path / "nope.json"
    assert main(["--replay", str(replay), "--baseline", str(missing)]) == 2
    assert "not found" in capsys.readouterr().err


def test_cli_update_writes_valid_json(tmp_path, suite_result, monkeypatch):
    """`--update` writes a loadable, schema-correct baseline file."""
    out = tmp_path / "BENCH_new.json"
    write_result(str(out), suite_result)
    loaded = json.loads(out.read_text())
    assert loaded["schema"] == SCHEMA
    assert compare(loaded, suite_result) == []


def test_bench_diff_stub_reports_pinned_metric_deltas(suite_result):
    from repro.bench import bench_diff_stub

    drifted = copy.deepcopy(suite_result)
    case = next(iter(CASES))
    metric = next(iter(drifted["cases"][case]["metrics"]))
    drifted["cases"][case]["metrics"][metric] += 1
    doc = bench_diff_stub(drifted, suite_result)
    assert doc["schema"] == "repro-diff/1" and doc["kind"] == "bench"
    assert doc["verdict"] == "divergent"
    assert doc["cases"][case]["verdict"] == "divergent"
    [entry] = doc["cases"][case]["changed"]
    assert entry["path"] == metric and entry["kind"] == "changed"
    # all other cases are listed, explicitly identical
    others = [c for n, c in doc["cases"].items() if n != case]
    assert others and all(c["verdict"] == "identical" for c in others)
    json.dumps(doc)


def test_bench_diff_stub_flags_missing_case(suite_result):
    from repro.bench import bench_diff_stub

    partial = copy.deepcopy(suite_result)
    case = next(iter(CASES))
    del partial["cases"][case]
    doc = bench_diff_stub(partial, suite_result)
    assert doc["cases"][case]["changed"][0]["kind"] == "missing"


def test_cli_failure_names_case_and_writes_diff_stub(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    result = load_result(DEFAULT_BASELINE)
    write_result(str(baseline), result)
    drifted = copy.deepcopy(result)
    case = next(iter(CASES))
    metric = next(iter(drifted["cases"][case]["metrics"]))
    drifted["cases"][case]["metrics"][metric] += 5
    replay = tmp_path / "current.json"
    write_result(str(replay), drifted)
    stub = tmp_path / "diff.json"
    assert main(
        ["--replay", str(replay), "--baseline", str(baseline),
         "--diff-out", str(stub)]
    ) == 1
    err = capsys.readouterr().err
    assert f"offending case(s): {case}" in err
    assert "diff stub written" in err
    doc = json.loads(stub.read_text())
    assert doc["verdict"] == "divergent"
    assert doc["cases"][case]["changed"][0]["path"] == metric
