#!/usr/bin/env python
"""Pricing a run: monetary cost of resource usage (Section VII future work).

Compares MRCP-RM and MinEDF-WC on the same job stream under a cloud tariff:
slot-second usage rates, a per-resource provisioning charge, and an SLA
penalty per deadline miss.  The interesting output is *cost per on-time
job* -- the revenue-side view of the late-jobs objective.

Also demonstrates the analysis helpers: slot utilization and offered load.

Run:  python examples/cost_analysis.py
"""

from repro.baselines import MinEdfWcPolicy, SlotScheduler
from repro.core import MrcpRm, MrcpRmConfig
from repro.core.schedule import TaskAssignment
from repro.metrics import MetricsCollector, PricingModel, execution_cost, track_execution
from repro.metrics.analysis import offered_load, slot_utilization
from repro.sim import Simulator
from repro.workload import (
    SyntheticWorkloadParams,
    generate_synthetic_workload,
    make_uniform_cluster,
)

PRICING = PricingModel(
    map_slot_price=0.0002,      # $/map-slot-second
    reduce_slot_price=0.0004,   # $/reduce-slot-second
    resource_base_price=0.0001, # $/resource-second provisioned
    late_penalty=5.0,           # $/deadline miss
)


def workload():
    params = SyntheticWorkloadParams(
        num_jobs=16,
        map_tasks_range=(1, 8),
        reduce_tasks_range=(1, 4),
        e_max=10,
        ar_probability=0.0,
        deadline_multiplier_max=1.5,  # tight deadlines: misses cost money
        arrival_rate=0.15,
        total_map_slots=4,
        total_reduce_slots=4,
    )
    return generate_synthetic_workload(params, seed=23)


def run_mrcp(jobs, resources):
    sim, metrics = Simulator(), MetricsCollector()
    manager = MrcpRm(sim, resources, MrcpRmConfig(), metrics)
    executed = track_execution(manager.executor)
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: manager.submit(j))
    sim.run()
    manager.executor.assert_quiescent()
    return metrics.finalize(), executed


def run_minedf(jobs, resources):
    sim, metrics = Simulator(), MetricsCollector()
    scheduler = SlotScheduler(sim, resources, MinEdfWcPolicy(), metrics)
    executed = []
    original = scheduler.cluster.start_task

    def recording(task, resource_id):
        executed.append(
            TaskAssignment(task, resource_id, 0, int(sim.now))
        )
        original(task, resource_id)

    scheduler.cluster.start_task = recording
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: scheduler.submit(j))
    sim.run()
    scheduler.cluster.assert_quiescent()
    return metrics.finalize(), executed


def main() -> None:
    resources = make_uniform_cluster(2, 2, 2)
    jobs = workload()
    print(f"offered load rho = {offered_load(jobs, resources):.2f} "
          f"({len(jobs)} jobs)")
    print()
    print(f"{'scheduler':>10} | {'late':>4} | {'usage $':>8} | "
          f"{'provision $':>11} | {'penalty $':>9} | {'total $':>8} | "
          f"{'$/on-time job':>13}")
    print("-" * 82)

    for name, runner in (("mrcp-rm", run_mrcp), ("minedf-wc", run_minedf)):
        metrics, executed = runner([j.copy() for j in jobs], resources)
        cost = execution_cost(
            executed, resources, PRICING, metrics=metrics
        )
        util = slot_utilization(executed, resources)
        print(
            f"{name:>10} | {metrics.late_jobs:>4} | {cost.usage_cost:>8.3f} | "
            f"{cost.provisioning_cost:>11.3f} | {cost.penalty_cost:>9.2f} | "
            f"{cost.total:>8.2f} | "
            f"{cost.cost_per_on_time_job(metrics.jobs_completed):>13.3f}"
        )
        print(f"{'':>10}   map util {util.map_utilization:.1%}, "
              f"reduce util {util.reduce_utilization:.1%}")


if __name__ == "__main__":
    main()
