#!/usr/bin/env python
"""SLA forensics end to end: run with faults, attribute lateness, report.

Runs a deadline-tight synthetic workload through MRCP-RM under fault
injection (task failures, stragglers, random resource outages) with tracing
and plan history on, decomposes every late job's tardiness into slot
contention / solver delay / fault recovery / residual execution
(:mod:`repro.obs.forensics`), and writes the self-contained HTML run report
(:mod:`repro.obs.report`) -- open it in any browser, no network needed.

Run:  PYTHONPATH=src python examples/forensics_run.py --out report.html

``--smoke`` shrinks nothing (the run is already seconds-long) but switches
from a pretty summary to *checks*: the trace must pass strict Chrome
trace-event conformance, every attribution must be nonnegative and sum
exactly to the measured tardiness, and the report must be a single
self-contained HTML file (inline SVG, no scripts, no external references).
Exits non-zero on any violation (used by the CI trace-smoke job).
"""

import argparse
import sys

from repro.core import MrcpRm, MrcpRmConfig
from repro.cp.solver import SolverParams
from repro.faults import FaultModel
from repro.metrics import MetricsCollector
from repro.obs import ObsConfig
from repro.obs.conformance import validate_trace_events
from repro.obs.forensics import attribute_lateness, format_attributions
from repro.obs.report import write_report
from repro.sim import RandomStreams, Simulator
from repro.workload import (
    SyntheticWorkloadParams,
    generate_synthetic_workload,
    make_uniform_cluster,
)


def _check(ok: bool, message: str) -> None:
    """Print and exit non-zero when a smoke assertion fails."""
    if not ok:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def _run(seed: int):
    """One traced, fault-injected, deadline-tight MRCP-RM run.

    Returns (metrics, jobs, resources, events, plan_history).
    """
    params = SyntheticWorkloadParams(
        num_jobs=14,
        total_map_slots=8,
        total_reduce_slots=8,
        deadline_multiplier_max=1.4,
        scale=0.1,
    )
    jobs = generate_synthetic_workload(params, streams=RandomStreams(seed))
    resources = make_uniform_cluster(4, 2, 2)
    sim = Simulator()
    metrics = MetricsCollector()
    tracer = ObsConfig(trace=True, plan_history=True).make_tracer()
    tracer.bind_sim_clock(lambda: sim.now)
    sim.attach_observability(tracer.registry)
    faults = FaultModel(
        task_failure_prob=0.15,
        straggler_prob=0.2,
        straggler_factor=2.0,
        outage_rate=0.002,
        outage_duration_range=(30.0, 90.0),
        outage_horizon=2000.0,
        seed=seed,
    )
    config = MrcpRmConfig(
        faults=faults,
        record_plan_history=True,
        solver=SolverParams(time_limit=0.5, tree_fail_limit=200, use_lns=False),
    )
    manager = MrcpRm(sim, resources, config, metrics, tracer=tracer)
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: manager.submit(j))
    sim.run()
    manager.executor.assert_quiescent()
    result = metrics.finalize()
    return result, jobs, resources, tracer.recorder.events, manager.plan_history


def smoke(out: str, seed: int) -> None:
    """CI mode: conformance + attribution invariants + report self-containment."""
    result, jobs, resources, events, plan_history = _run(seed)
    errors = validate_trace_events(events)
    _check(not errors, f"trace conformance: {errors[:3]} ({len(errors)} total)")
    attributions = attribute_lateness(
        result, jobs, events, plan_history=plan_history
    )
    _check(
        len(attributions) == result.late_jobs,
        f"{len(attributions)} attributions for {result.late_jobs} late jobs",
    )
    for a in attributions:
        total = sum(a.components_us.values())
        _check(
            total == a.tardiness_us,
            f"job {a.job_id}: components sum {total} != tardiness "
            f"{a.tardiness_us} us",
        )
        _check(
            all(v >= 0 for v in a.components_us.values()),
            f"job {a.job_id}: negative component {a.components_us}",
        )
    write_report(
        out,
        result,
        resources=resources,
        events=events,
        attributions=attributions,
        plan_history=plan_history,
        title="forensics smoke report",
    )
    with open(out, "r", encoding="utf-8") as fh:
        html = fh.read()
    _check(len(html) > 1000, f"report suspiciously small ({len(html)} bytes)")
    _check("<svg" in html, "report has no inline SVG")
    _check("<script" not in html, "report must not contain scripts")
    _check(
        'src="http' not in html and 'href="http' not in html,
        "report must not reference external resources",
    )
    print(
        f"smoke OK: {len(events)} events conformant, "
        f"{len(attributions)} attributions sum exactly, "
        f"report self-contained ({len(html)} bytes) -> {out}"
    )


def full(out: str, seed: int) -> None:
    """Default mode: run, print the attribution table, write the report."""
    result, jobs, resources, events, plan_history = _run(seed)
    attributions = attribute_lateness(
        result, jobs, events, plan_history=plan_history
    )
    print(
        f"run: {result.jobs_completed}/{result.jobs_arrived} jobs completed, "
        f"{result.late_jobs} late ({result.percent_late:.1f}%), "
        f"{result.failures_injected} failures / "
        f"{result.stragglers_injected} stragglers / "
        f"{result.outages} outages injected"
    )
    if attributions:
        print()
        print(format_attributions(attributions))
        print()
    write_report(
        out,
        result,
        resources=resources,
        events=events,
        attributions=attributions,
        plan_history=plan_history,
        title=f"MRCP-RM forensics run (seed {seed}, fault-injected)",
    )
    print(f"report written to {out} -- open it in any browser")


def main() -> int:
    """Parse arguments and run the selected mode."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="report.html", help="HTML report output path"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="forensics-contract assertions instead of a summary (CI)",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke(args.out, args.seed)
    else:
        full(args.out, args.seed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
