#!/usr/bin/env python
"""Closed-system batch planning (the paper's preliminary-work setting).

Schedule a fixed batch of jobs known up front -- e.g. planning tonight's
reservation window -- with one CP solve, then inspect the plan: per-job
completion vs deadline, makespan, and the Gantt chart.

Run:  python examples/batch_planning.py
"""

from repro.core import schedule_batch
from repro.core.formulation import FormulationMode
from repro.cp.solver import SolverParams
from repro.workload import (
    SyntheticWorkloadParams,
    generate_synthetic_workload,
    make_uniform_cluster,
)


def main() -> None:
    params = SyntheticWorkloadParams(
        num_jobs=6,
        map_tasks_range=(2, 6),
        reduce_tasks_range=(1, 2),
        e_max=10,
        ar_probability=0.0,
        deadline_multiplier_max=2.0,
        arrival_rate=10.0,  # a dense batch: everything effectively at t=0
        total_map_slots=4,
        total_reduce_slots=2,
    )
    jobs = generate_synthetic_workload(params, seed=14)
    for job in jobs:  # a true closed batch: all available at t=0
        job.arrival_time = job.earliest_start = 0
    resources = make_uniform_cluster(2, 2, 1)

    for mode in (FormulationMode.COMBINED, FormulationMode.JOINT):
        result = schedule_batch(
            jobs, resources, mode=mode,
            solver_params=SolverParams(time_limit=3.0),
        )
        print(f"--- {mode.value} mode: status={result.status.value} ---")
        print(f"late jobs : {result.late_jobs} {result.late_job_ids}")
        print(f"makespan  : {result.makespan} s   "
              f"(solved in {result.solve_seconds * 1000:.0f} ms)")
        for job in jobs:
            ct = result.completion_times[job.id]
            flag = "LATE" if ct > job.deadline else "ok  "
            print(f"  job {job.id}: completes {ct:>4}  deadline {job.deadline:>4}  {flag}")
        print()

    print(result.gantt(width=76))


if __name__ == "__main__":
    main()
