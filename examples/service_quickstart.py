"""Admission control as a service, without the HTTP layer.

Drives the SchedulerService sync core on a manual clock — submit a few
jobs, watch the batcher hold and flush them, read the SLA quotes — then
runs the deterministic in-process load harness and prints its report.
The HTTP front-end (`mrcp-rm serve`) wraps exactly this core.
"""

from __future__ import annotations

import argparse

from repro.obs.clocks import ManualServiceClock
from repro.service import (
    BatchingConfig,
    JobSpec,
    SchedulerService,
    ServiceConfig,
)
from repro.service.loadgen import LoadProfile, run_inprocess
from repro.workload.entities import make_uniform_cluster


def quote_a_few_jobs() -> None:
    clock = ManualServiceClock()
    service = SchedulerService(
        resources=make_uniform_cluster(2, 1, 1),
        config=ServiceConfig(
            batching=BatchingConfig(max_batch_size=4, max_hold_seconds=0.5)
        ),
        clock=clock,
    )

    # Three submissions land inside one hold window ...
    service.submit_sync(JobSpec("etl-1", map_durations=(10, 10), deadline=60))
    service.submit_sync(JobSpec("etl-2", map_durations=(20,), deadline=30))
    # ... including one that cannot meet its deadline on two map slots.
    service.submit_sync(
        JobSpec("rush", map_durations=(25, 25, 25), deadline=30)
    )
    print(f"queued: {len(service.batcher)} jobs, none quoted yet")

    clock.advance(0.5)  # the hold timer expires; the batch flushes
    for quote in service.pump():
        verdict = "ADMITTED" if quote.admitted else f"rejected ({quote.reason})"
        print(
            f"  {quote.job_id:6s} {verdict:24s} "
            f"predicted {quote.predicted_completion} vs deadline {quote.deadline} "
            f"[{quote.rung}]"
        )

    status = service.status_sync("etl-1")
    assert status is not None
    print(f"etl-1 plan: {status.planned}")


def load_harness(requests: int) -> None:
    report = run_inprocess(LoadProfile(requests=requests, seed=0))
    print(
        f"loadtest: {report.admitted} admitted / {report.rejected} rejected"
        f" / {report.shed} shed, digest {report.digest},"
        f" p99 hold {report.latency_p99 * 1000:.1f} ms"
    )
    assert report.admitted >= 1 and report.rejected >= 1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--requests", type=int, default=40, help="load harness size"
    )
    args = parser.parse_args()
    quote_a_few_jobs()
    load_harness(args.requests)


if __name__ == "__main__":
    main()
