#!/usr/bin/env python
"""Fault tolerance: SLA misses vs. task failure rate.

MRCP-RM's Table 2 loop re-solves the CP model at every scheduling event,
which makes fault recovery "free": a failed attempt is re-queued as an
unstarted task and the very next re-plan weaves it back into the schedule.
This example sweeps the per-attempt failure probability (with a straggler
hazard and one deterministic resource outage held fixed) and reports how
the paper's N / P / T metrics degrade as the cluster gets less reliable.

Run:  python examples/fault_tolerance.py [--smoke]

``--smoke`` runs a single small faulted scenario (for CI).
"""

import argparse
import sys

from repro import quick_demo
from repro.faults import FaultModel, OutageWindow

FAILURE_PROBS = [0.0, 0.05, 0.1, 0.2, 0.4]


def sweep_point(failure_prob: float, seed: int, num_jobs: int):
    """Run one demo-sized open system at the given failure probability."""
    faults = None
    if failure_prob > 0:
        faults = FaultModel(
            task_failure_prob=failure_prob,
            straggler_prob=0.1,
            straggler_factor=2.5,
            outages=(OutageWindow(resource_id=0, start=60.0, duration=40.0),),
            seed=seed,
        )
    return quick_demo(seed=seed, num_jobs=num_jobs, faults=faults)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=12)
    parser.add_argument(
        "--smoke", action="store_true",
        help="single fast faulted run with sanity checks (for CI)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        m = sweep_point(0.2, seed=args.seed, num_jobs=6)
        assert m.jobs_completed + m.jobs_failed == m.jobs_arrived
        assert m.faults_enabled
        assert "retries" in m.as_dict()
        print(
            f"smoke OK: {m.jobs_completed}/{m.jobs_arrived} completed, "
            f"{m.failures_injected} failures, {m.retries} retries, "
            f"{m.replans_on_failure} fault replans"
        )
        return 0

    print(f"{'fail_prob':>9} {'done':>6} {'failed':>6} {'N':>4} "
          f"{'P%':>7} {'T':>8} {'retries':>8} {'replans':>8}")
    for prob in FAILURE_PROBS:
        m = sweep_point(prob, seed=args.seed, num_jobs=args.jobs)
        print(
            f"{prob:>9.2f} {m.jobs_completed:>6} {m.jobs_failed:>6} "
            f"{m.late_jobs:>4} {m.percent_late:>7.2f} "
            f"{m.avg_turnaround:>8.1f} {m.retries:>8} "
            f"{m.replans_on_failure:>8}"
        )
    print()
    print("Reading the table: as the failure hazard grows, retries consume")
    print("slot capacity, so N/P climb and turnaround stretches; jobs only")
    print("fail outright once a task exhausts its retry budget.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
