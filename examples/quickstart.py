#!/usr/bin/env python
"""Quickstart: schedule a stream of MapReduce jobs with SLAs using MRCP-RM.

This is the smallest complete use of the library: generate a Table 3
synthetic workload, stand up a simulated cluster, drive an open stream of
arrivals through the resource manager, and read the paper's metrics back.

Run:  python examples/quickstart.py
"""

from repro.core import MrcpRm, MrcpRmConfig
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload import (
    SyntheticWorkloadParams,
    generate_synthetic_workload,
    make_uniform_cluster,
)


def main() -> None:
    # --- 1. a workload: 20 jobs, Poisson arrivals, SLAs with deadlines
    params = SyntheticWorkloadParams(
        num_jobs=20,
        map_tasks_range=(1, 10),  # k_j^mp ~ DU[1, 10]
        reduce_tasks_range=(1, 5),  # k_j^rd ~ DU[1, 5]
        e_max=10,  # map task time ~ DU[1, 10] s
        ar_probability=0.3,  # 30% of jobs are advance reservations
        s_max=500,  # AR start offset ~ DU[1, 500] s
        deadline_multiplier_max=3.0,  # d_j = s_j + TE * U[1, 3]
        arrival_rate=0.02,  # jobs/s
        total_map_slots=8,
        total_reduce_slots=8,
    )
    jobs = generate_synthetic_workload(params, seed=7)

    # --- 2. a cluster: 4 resources, 2 map + 2 reduce slots each
    resources = make_uniform_cluster(4, map_capacity=2, reduce_capacity=2)

    # --- 3. the resource manager inside a discrete event simulation
    sim = Simulator()
    metrics = MetricsCollector()
    manager = MrcpRm(sim, resources, MrcpRmConfig(), metrics)
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: manager.submit(j))

    sim.run()  # run the open system to drain
    manager.executor.assert_quiescent()

    # --- 4. the paper's metrics
    result = metrics.finalize()
    print(f"jobs arrived / completed : {result.jobs_arrived} / {result.jobs_completed}")
    print(f"late jobs N              : {result.late_jobs}")
    print(f"percent late P           : {result.percent_late:.2f}%")
    print(f"avg turnaround T         : {result.avg_turnaround:.1f} s (simulated)")
    print(f"avg scheduling overhead O: {result.avg_sched_overhead * 1000:.2f} ms/job (wall)")
    print(f"scheduler invocations    : {result.scheduler_invocations}")
    if result.late_job_ids:
        print(f"late job ids             : {result.late_job_ids}")


if __name__ == "__main__":
    main()
