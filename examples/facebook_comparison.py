#!/usr/bin/env python
"""MRCP-RM vs MinEDF-WC on the Facebook workload (Figures 2-3, miniature).

Reproduces the paper's head-to-head comparison at laptop scale: the Table 4
job mix with LogNormal task times, 8 resources with one map and one reduce
slot each, deadlines drawn as U[1,2] x TE, and a sweep of Poisson arrival
rates.  Both schedulers face the *identical* job stream per replication.

Expected shape (paper Figure 2/3): MRCP-RM's percentage of late jobs P is
substantially below MinEDF-WC's at every arrival rate, and its average
turnaround T is slightly lower.

Run:  python examples/facebook_comparison.py
"""

from dataclasses import replace

from repro.experiments.configs import (
    SCALED,
    default_facebook_params,
    default_facebook_system,
    default_mrcp_config,
)
from repro.experiments.runner import RunConfig, run_once


def main() -> None:
    lambdas = [0.0001, 0.0003, 0.0005]
    replications = 3

    print(f"{'lambda':>8} | {'scheduler':>10} | {'P (%)':>8} | {'T (s)':>10}")
    print("-" * 48)
    for lam in lambdas:
        for scheduler in ("mrcp-rm", "minedf-wc"):
            p_total, t_total = 0.0, 0.0
            for rep in range(replications):
                config = RunConfig(
                    scheduler=scheduler,
                    workload="facebook",
                    facebook=replace(
                        default_facebook_params(SCALED),
                        arrival_rate=lam,
                        num_jobs=40,
                    ),
                    system=default_facebook_system(SCALED),
                    mrcp=default_mrcp_config(SCALED),
                    seed=17,
                )
                metrics = run_once(config, replication=rep)
                p_total += metrics.percent_late
                t_total += metrics.avg_turnaround
            print(
                f"{lam:>8g} | {scheduler:>10} | "
                f"{p_total / replications:>8.2f} | "
                f"{t_total / replications:>10.1f}"
            )
        print("-" * 48)


if __name__ == "__main__":
    main()
