#!/usr/bin/env python
"""A factor-at-a-time study (Figures 4-9 style) from the experiment harness.

Varies the deadline multiplier d_UL (Figure 7) and the arrival rate lambda
(Figure 8) on the scaled Table 3 workload, printing the O / T / P series the
paper plots.  All other parameters sit at their defaults; workload streams
use common random numbers so only the studied factor changes.

Run:  python examples/factor_at_a_time.py
"""

from repro.experiments import SCALED, figure_series, format_series
from repro.experiments.reporting import run_series


def main() -> None:
    for figure in ("fig7", "fig8"):
        series = figure_series(figure, SCALED)
        print(f"running {figure} ({len(series.configs)} points, "
              f"3 replications each)...")
        results = run_series(series, replications=3)
        print(format_series(series, results))
        print()


if __name__ == "__main__":
    main()
