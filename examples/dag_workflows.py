#!/usr/bin/env python
"""DAG workflows with user-specified precedence (Section VII future work).

The paper closes by calling for "handling more complex workflows with
user-specified precedence relationships" -- this library implements it.  We
build an ETL-style pipeline:

    extract ──> clean ──┐
       │                ├──> report
       └──> features ───┘

run it through MRCP-RM alongside a stream of random DAG workflows, and
render the resulting schedule as an ASCII Gantt chart.

Run:  python examples/dag_workflows.py
"""

from repro.core import MrcpRm, MrcpRmConfig, Schedule
from repro.core.gantt import render_gantt
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload import (
    Stage,
    WorkflowJob,
    WorkflowWorkloadParams,
    generate_workflow_workload,
    make_uniform_cluster,
)
from repro.workload.entities import Task, TaskKind


def etl_pipeline(job_id: int = 0) -> WorkflowJob:
    def tasks(stage, kind, *durations):
        return [
            Task(f"w{job_id}_{stage}{i}", job_id, kind, d)
            for i, d in enumerate(durations)
        ]

    return WorkflowJob(
        id=job_id,
        arrival_time=0,
        earliest_start=0,
        deadline=60,
        stages=[
            Stage("extract", tasks("e", TaskKind.MAP, 6, 6, 6)),
            Stage("clean", tasks("c", TaskKind.MAP, 8, 8)),
            Stage("features", tasks("f", TaskKind.MAP, 10)),
            Stage("report", tasks("r", TaskKind.REDUCE, 7)),
        ],
        edges=[
            ("extract", "clean"),
            ("extract", "features"),
            ("clean", "report"),
            ("features", "report"),
        ],
    )


def main() -> None:
    resources = make_uniform_cluster(2, 2, 1)
    sim = Simulator()
    metrics = MetricsCollector()
    manager = MrcpRm(sim, resources, MrcpRmConfig(), metrics)

    pipeline = etl_pipeline()
    sim.schedule_at(0, lambda: manager.submit(pipeline))

    # A background stream of random DAG workflows arriving afterwards.
    stream = generate_workflow_workload(
        WorkflowWorkloadParams(
            num_jobs=4,
            stages_range=(2, 3),
            tasks_per_stage_range=(1, 3),
            e_max=8,
            arrival_rate=0.02,
            total_map_slots=4,
            total_reduce_slots=2,
            first_job_id=100,
        ),
        seed=8,
    )
    for wf in stream:
        arrival = wf.arrival_time + 1  # after the pipeline submission
        wf.arrival_time = wf.earliest_start = arrival
        wf.deadline += 1
        sim.schedule_at(arrival, lambda j=wf: manager.submit(j))

    # Capture every assignment as it starts for the Gantt chart.
    executed = Schedule()
    original = manager.executor._start_task

    def record(assignment):
        executed.add(assignment)
        original(assignment)

    manager.executor._start_task = record

    sim.run()
    manager.executor.assert_quiescent()

    result = metrics.finalize()
    print(f"workflows completed : {result.jobs_completed}/{result.jobs_arrived}")
    print(f"late                : {result.late_jobs} ({result.percent_late:.1f}%)")
    print(f"pipeline turnaround : {result.turnarounds[pipeline.id]} s "
          f"(deadline slack was {pipeline.deadline})")
    print()
    print("executed schedule (ETL pipeline = glyphs 0..6):")
    print(render_gantt(executed, resources, width=76))

    # The DAG's guarantee, verified from the executed record:
    ends = {a.task.id: a.end for a in executed}
    starts = {a.task.id: a.start for a in executed}
    report_start = starts[f"w{pipeline.id}_r0"]
    for upstream in ("c", "f"):
        for a in executed:
            if a.task.id.startswith(f"w{pipeline.id}_{upstream}"):
                assert ends[a.task.id] <= report_start
    print("\nverified: report stage started only after clean+features finished")


if __name__ == "__main__":
    main()
