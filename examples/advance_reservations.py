#!/usr/bin/env python
"""Advance reservations: jobs whose SLA starts in the future (Section V.E).

The scenario the paper's earliest-start-time machinery exists for: a mix of
on-demand jobs (s_j = arrival) and advance reservations (s_j far in the
future).  We show:

* AR jobs never start before their reserved time,
* the EST-deferral optimisation (Section V.E) keeps solver models small --
  deferred jobs are not re-planned on every unrelated arrival,
* turnaround is measured from s_j, so a reservation served exactly on time
  has turnaround equal to its bare execution time.

Run:  python examples/advance_reservations.py
"""

from repro.core import MrcpRm, MrcpRmConfig
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload import make_uniform_cluster
from repro.workload.entities import Job, Task, TaskKind


def make_job(job_id, arrival, start, deadline, map_durs, red_durs=()):
    return Job(
        id=job_id,
        arrival_time=arrival,
        earliest_start=start,
        deadline=deadline,
        map_tasks=[
            Task(f"t{job_id}_m{i}", job_id, TaskKind.MAP, d)
            for i, d in enumerate(map_durs)
        ],
        reduce_tasks=[
            Task(f"t{job_id}_r{i}", job_id, TaskKind.REDUCE, d)
            for i, d in enumerate(red_durs)
        ],
    )


def run(est_deferral: bool):
    sim = Simulator()
    metrics = MetricsCollector()
    manager = MrcpRm(
        sim,
        make_uniform_cluster(2, 2, 2),
        MrcpRmConfig(est_deferral=est_deferral, lookahead=10),
        metrics,
    )

    jobs = [
        # on-demand: run immediately
        make_job(0, arrival=0, start=0, deadline=60, map_durs=(10, 10), red_durs=(5,)),
        # reservation booked at t=2 for t=100
        make_job(1, arrival=2, start=100, deadline=140, map_durs=(12, 8), red_durs=(6,)),
        # another on-demand burst at t=5
        make_job(2, arrival=5, start=5, deadline=80, map_durs=(8, 8, 8)),
        # a second reservation for t=120
        make_job(3, arrival=6, start=120, deadline=160, map_durs=(10,), red_durs=(4,)),
    ]
    start_times = {}
    original_start = manager.executor._start_task

    def record(assignment):
        start_times.setdefault(assignment.task.job_id, sim.now)
        original_start(assignment)

    manager.executor._start_task = record

    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: manager.submit(j))
    sim.run()
    manager.executor.assert_quiescent()
    return metrics.finalize(), start_times, jobs


def main() -> None:
    for deferral in (True, False):
        result, first_starts, jobs = run(est_deferral=deferral)
        tag = "with" if deferral else "without"
        print(f"--- {tag} EST deferral (Section V.E) ---")
        for job in jobs:
            kind = "reservation" if job.earliest_start > job.arrival_time else "on-demand  "
            print(
                f"  job {job.id} ({kind}) s_j={job.earliest_start:>3} "
                f"first task started at t={first_starts[job.id]:>5.0f} "
                f"turnaround={result.turnarounds[job.id]} s"
            )
            assert first_starts[job.id] >= job.earliest_start
        print(f"  late jobs: {result.late_jobs}, "
              f"scheduler invocations: {result.scheduler_invocations}, "
              f"overhead O: {result.avg_sched_overhead * 1e3:.2f} ms/job")
        print()


if __name__ == "__main__":
    main()
