#!/usr/bin/env python
"""Parallel sweep engine demo: deterministic fan-out over worker processes.

Runs the Figure 7 (deadline-tightness) sweep at smoke scale twice -- once
sequentially (``workers=1``, the reference) and once over a process pool --
and proves the determinism contract from docs/SWEEPS.md: the merged
``sweep.json`` / ``sweep.csv`` artifacts are byte-identical regardless of
worker count, because every cell's seed derives from its semantic
coordinates and the merge is a pure sort by cell index.

Run:  python examples/sweep_run.py
      python examples/sweep_run.py --workers 8 --replications 3
      python examples/sweep_run.py --assert-speedup   # CI: require >1.5x

``--assert-speedup`` exits nonzero unless the parallel run beats the
sequential one by more than 1.5x wall-clock -- only meaningful on a
multi-core machine, so it is a flag (the CI sweep-smoke job sets it) rather
than the default.
"""

import argparse
import os
import sys
import tempfile

from repro.experiments import SCALED, figure_series
from repro.experiments.pool import SweepSpec, run_sweep


def run_and_write(spec, workers, out_dir):
    result = run_sweep(spec, workers=workers, out_dir=out_dir)
    return result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--figure", default="fig7")
    parser.add_argument("--replications", type=int, default=2)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--assert-speedup",
        action="store_true",
        help="fail unless the parallel run is >1.5x faster (CI gate)",
    )
    args = parser.parse_args(argv)

    series = figure_series(args.figure, SCALED)
    spec = SweepSpec.from_series(
        series, replications=args.replications, root_seed=args.seed
    )
    cells = len(spec.cells())
    print(
        f"sweep {series.figure}: {len(series.configs)} configurations x "
        f"{args.replications} replications = {cells} cells"
    )

    with tempfile.TemporaryDirectory() as tmp:
        seq_dir = os.path.join(tmp, "seq")
        par_dir = os.path.join(tmp, "par")
        seq = run_and_write(spec, 1, seq_dir)
        par = run_and_write(spec, args.workers, par_dir)

        identical = all(
            open(os.path.join(seq_dir, name), "rb").read()
            == open(os.path.join(par_dir, name), "rb").read()
            for name in ("sweep.json", "sweep.csv")
        )

    speedup = seq.wall / par.wall if par.wall > 0 else float("inf")
    print(f"  sequential (workers=1)          : {seq.wall:.2f}s")
    print(f"  parallel   (workers={args.workers})          : {par.wall:.2f}s")
    print(f"  speedup                         : {speedup:.2f}x")
    print(f"  merged artifacts byte-identical : {identical}")
    for label, stats in par.summary().items():
        print(
            f"    {label:12s} N={stats.get('N', 0.0):.2f} "
            f"T={stats.get('T', 0.0):.1f}s P={stats.get('P', 0.0):.2f}%"
        )

    if not identical:
        print("FAIL: parallel artifacts differ from sequential", file=sys.stderr)
        return 1
    if par.failed_cells or seq.failed_cells:
        print("FAIL: sweep had failed cells", file=sys.stderr)
        return 1
    if args.assert_speedup and speedup <= 1.5:
        print(
            f"FAIL: speedup {speedup:.2f}x not > 1.5x "
            f"(cpus={os.cpu_count()})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
