#!/usr/bin/env python
"""Capture an end-to-end trace of one MRCP-RM run.

Runs the synthetic Table 3 workload (scaled profile, default factor levels)
under MRCP-RM with tracing enabled and writes a Chrome trace-event JSON --
load it at https://ui.perfetto.dev or ``chrome://tracing`` -- plus a
``.jsonl`` event log alongside.  See docs/OBSERVABILITY.md for how to read
the two timelines.

Run:  PYTHONPATH=src python examples/trace_run.py --out trace.json

``--smoke`` switches to a seconds-long workload and, instead of a pretty
summary, *checks* the observability contract: the traced run's O/N/T/P must
equal an untraced same-seed run's (both use an injected constant wall clock
so O is deterministically 0), and the trace must be valid non-empty JSON
with one span per scheduler invocation and all four CP solver phase spans.
Exits non-zero on any violation (used as the CI trace-smoke job).
"""

import argparse
import json
import sys

from repro.experiments.configs import (
    SCALED,
    default_synthetic_params,
    default_synthetic_system,
)
from repro.experiments.runner import RunConfig, SystemConfig, run_once
from repro.obs import ObsConfig
from repro.workload import SyntheticWorkloadParams

#: CP solver phase spans that must appear in every MRCP-RM trace.
PHASES = ("cp.propagate", "cp.warm_start", "cp.search", "cp.lns")


def _smoke_workload() -> SyntheticWorkloadParams:
    """A seconds-long shrink of the Table 3 workload for CI."""
    return SyntheticWorkloadParams(
        num_jobs=8,
        map_tasks_range=(1, 6),
        reduce_tasks_range=(1, 3),
        e_max=10,
        ar_probability=0.3,
        s_max=200,
        deadline_multiplier_max=3.0,
        arrival_rate=0.05,
    )


def _check(ok: bool, message: str) -> None:
    """Print and exit non-zero when a smoke assertion fails."""
    if not ok:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def smoke(out: str, seed: int) -> None:
    """CI mode: assert the traced run is metric-identical and trace is sane."""
    clock = lambda: 0.0  # noqa: E731 -- constant clock pins O to 0 exactly
    workload = _smoke_workload()
    untraced = RunConfig(
        workload="synthetic",
        synthetic=workload,
        system=SystemConfig(num_resources=4),
        obs=ObsConfig(wall_clock=clock),
        seed=seed,
    )
    traced = RunConfig(
        workload="synthetic",
        synthetic=workload,
        system=SystemConfig(num_resources=4),
        obs=ObsConfig(trace_out=out, wall_clock=clock),
        seed=seed,
    )
    m0 = run_once(untraced)
    m1 = run_once(traced)
    _check(
        m0.as_dict() == m1.as_dict(),
        f"traced metrics {m1.as_dict()} != untraced {m0.as_dict()}",
    )
    with open(out, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", [])
    _check(bool(events), "trace file has no events")
    names = [e["name"] for e in events]
    invocations = names.count("scheduler.invocation")
    _check(invocations >= 1, "no scheduler.invocation spans in trace")
    _check(
        invocations == m1.scheduler_invocations,
        f"{invocations} invocation spans vs "
        f"{m1.scheduler_invocations} recorded invocations",
    )
    for phase in PHASES:
        _check(phase in names, f"missing solver phase span {phase}")
    print(
        f"smoke OK: {len(events)} events, {invocations} invocations, "
        f"O/N/T/P identical with tracing on ({m1.as_dict()})"
    )


def full(out: str, seed: int) -> None:
    """Default mode: trace the scaled Table 3 workload, print a summary."""
    config = RunConfig(
        workload="synthetic",
        synthetic=default_synthetic_params(SCALED),
        system=default_synthetic_system(SCALED),
        obs=ObsConfig(trace_out=out),
        seed=seed,
    )
    metrics = run_once(config)
    jsonl = out[: -len(".json")] + ".jsonl" if out.endswith(".json") else out + ".jsonl"
    print(f"trace written to {out} (events) and {jsonl} (JSONL log)")
    print(f"  jobs                : {metrics.jobs_completed}/{metrics.jobs_arrived}")
    print(f"  O/N/T/P             : {metrics.as_dict()}")
    print(f"  invocations         : {metrics.scheduler_invocations}")
    print(f"  solves by phase     : {metrics.solves_by_phase}")
    print(f"  warm-start time (s) : {metrics.solver_warm_start_time:.4f}")
    print(f"  propagation time (s): {metrics.solver_propagate_time:.4f}")
    top = sorted(
        metrics.solver_propagators.items(),
        key=lambda kv: kv[1]["runs"],
        reverse=True,
    )[:3]
    for name, counts in top:
        print(
            f"  {name:28s}: {counts['runs']} runs, "
            f"{counts['prunes']} prunes, {counts['fails']} fails"
        )
    print("load the trace at https://ui.perfetto.dev")


def main() -> int:
    """Parse arguments and run the selected mode."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="trace_run.json", help="Chrome trace output path"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload + observability-contract assertions (CI)",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke(args.out, args.seed)
    else:
        full(args.out, args.seed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
