#!/usr/bin/env python
"""Using the CP scheduling solver directly (the paper's Table 1 model).

The `repro.cp` package is a general cumulative-scheduling solver and can be
used standalone -- here we hand-build the paper's formulation for a small
batch of jobs, in *both* modes:

1. combined-resource mode (Section V.D): one aggregated capacity,
2. joint matchmaking mode (plain Table 1): per-resource optional intervals
   tied together with ``alternative`` constraints.

Run:  python examples/cp_playground.py
"""

from repro.cp import CpModel, CpSolver


def combined_mode() -> None:
    print("=== combined-resource model (Section V.D) ===")
    m = CpModel(horizon=500)

    # Job 1: three maps + one reduce, deadline 30.
    j1_maps = [m.interval_var(length=d, name=f"j1_m{i}") for i, d in enumerate((8, 6, 6))]
    j1_red = m.interval_var(length=10, name="j1_r0")
    m.add_barrier(j1_maps, [j1_red])
    late1 = m.add_deadline_indicator([j1_red], deadline=30, name="late_j1")
    m.add_group("j1", j1_maps, [j1_red], deadline=30)

    # Job 2: two maps, map-only, tight deadline 12, released at t=2.
    j2_maps = [m.interval_var(length=d, est=2, name=f"j2_m{i}") for i, d in enumerate((9, 5))]
    late2 = m.add_deadline_indicator(j2_maps, deadline=12, name="late_j2")
    m.add_group("j2", j2_maps, release=2, deadline=12)

    # Combined capacities: 2 map slots, 1 reduce slot in total.
    m.add_cumulative(j1_maps + j2_maps, capacity=2, name="map-slots")
    m.add_cumulative([j1_red], capacity=1, name="reduce-slots")
    m.minimize_sum([late1, late2])

    result = CpSolver().solve(m, time_limit=3.0)
    print(f"status={result.status.value}  late jobs={result.objective}")
    for iv in m.intervals:
        s = result.solution.start_of(iv)
        print(f"  {iv.name:6s} [{s:>3}, {s + iv.length:>3})")
    print()


def joint_mode() -> None:
    print("=== joint matchmaking model (Table 1) ===")
    m = CpModel(horizon=100)
    resources = {0: [], 1: []}  # per-resource option pools (1 slot each)
    bools = []
    for j, (length, deadline) in enumerate([(7, 7), (7, 7), (5, 20)]):
        task = m.interval_var(length=length, name=f"t{j}")
        options = []
        for rid in resources:
            opt = m.interval_var(
                length=length, name=f"t{j}@r{rid}", optional=True
            )
            resources[rid].append(opt)
            options.append(opt)
        m.add_alternative(task, options)
        bools.append(m.add_deadline_indicator([task], deadline=deadline))
        m.add_group(f"j{j}", [task], deadline=deadline)
    for rid, pool in resources.items():
        m.add_cumulative(pool, capacity=1, name=f"r{rid}")
    m.minimize_sum(bools)

    result = CpSolver().solve(m, time_limit=3.0)
    print(f"status={result.status.value}  late jobs={result.objective}")
    for task in m.intervals:
        chosen = result.solution.chosen_option(task)
        s = result.solution.start_of(task)
        print(f"  {task.name}: start={s:>2}  resource={chosen.name.split('@')[1]}")
    print(f"search: {result.stats.branches} branches, "
          f"{result.stats.fails} fails, "
          f"{result.stats.lns_iterations} LNS iterations")


if __name__ == "__main__":
    combined_mode()
    joint_mode()
