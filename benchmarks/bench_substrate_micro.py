"""Micro-benchmarks of the simulation and matchmaking substrates."""

from repro.core.matchmaking import decompose_combined_schedule
from repro.cp.profile import TimetableProfile
from repro.sim import Simulator
from repro.sim.rng import RandomStreams
from repro.workload import make_uniform_cluster
from repro.workload.entities import Task, TaskKind


def test_event_kernel_throughput(benchmark):
    """Dispatch 20k timer events (the executor's dominant kernel load)."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1

        for i in range(20_000):
            sim.schedule(i % 977, tick)
        sim.run()
        return count[0]

    dispatched = benchmark.pedantic(run, rounds=3, iterations=1)
    assert dispatched == 20_000


def test_profile_insertion_and_fit(benchmark):
    rng = RandomStreams(3).distributions("bench")
    tasks = [
        (rng.du(0, 5000), rng.du(1, 50), 1)
        for _ in range(800)
    ]

    def run():
        profile = TimetableProfile()
        placed = 0
        for est, length, demand in tasks:
            fit = profile.earliest_fit(est, 10_000, length, demand, 8)
            if fit is not None:
                profile.add(fit, fit + length, demand)
                placed += 1
        return placed

    placed = benchmark(run)
    assert placed == len(tasks)


def test_matchmaking_decomposition(benchmark):
    """Best-gap decomposition of a 1000-task combined schedule."""
    rng = RandomStreams(4).distributions("bench")
    resources = make_uniform_cluster(25, 2, 2)
    capacity = 50

    profile = TimetableProfile()
    movable = []
    for i in range(1000):
        length = rng.du(1, 30)
        est = rng.du(0, 4000)
        fit = profile.earliest_fit(est, 100_000, length, 1, capacity)
        profile.add(fit, fit + length, 1)
        movable.append(
            (Task(f"t{i}", i, TaskKind.MAP, length), fit)
        )

    out = benchmark.pedantic(
        lambda: decompose_combined_schedule(movable, [], resources),
        rounds=3,
        iterations=1,
    )
    assert len(out) == 1000
