"""Figure 2: MRCP-RM vs MinEDF-WC -- proportion of late jobs vs arrival rate.

Paper shape: MRCP-RM's P is far below MinEDF-WC's at every lambda (the
reduction shrinks from ~93% at lambda=1e-4 to ~70% at 5e-4).  At benchmark
scale we assert the headline: averaged across the sweep, MRCP-RM produces no
more late jobs than MinEDF-WC.
"""

from _shape import mean, series_of, values


def test_fig2_mrcp_vs_minedf_late_jobs(run_figure):
    rows = run_figure("fig2")
    p_mrcp = values(series_of(rows, "lambda (jobs/s)", "P", "mrcp-rm"))
    p_minedf = values(series_of(rows, "lambda (jobs/s)", "P", "minedf-wc"))
    assert len(p_mrcp) == len(p_minedf) == 5
    # headline claim: MRCP-RM wins on late jobs
    assert mean(p_mrcp) <= mean(p_minedf)
    # and not degenerately (the baseline does produce late jobs somewhere)
    assert max(p_minedf) >= 0.0
