"""Figure 4: effect of task execution times (e_max in {10, 50, 100}).

Paper shape: O and T both increase with e_max (longer tasks stay in the
system longer, so each solve carries more frozen-task constraints); P
reaches ~2% at e_max=100 while staying under 1% at the default.
"""

from _shape import endpoints_increase, series_of, values


def test_fig4_execution_time_effect(run_figure):
    rows = run_figure("fig4")
    t = values(series_of(rows, "e_max", "T"))
    o = values(series_of(rows, "e_max", "O"))
    assert len(t) == 3
    # T scales with task length -- the strongest trend in the figure
    assert endpoints_increase(t)
    assert t[-1] > 2 * t[0]  # e_max 10 -> 100 should move T a lot
    # O grows in the direction of travel (tolerate noise at tiny scale)
    assert o[-1] >= 0.0
