"""Micro-benchmarks of the CP solver substrate.

These track the cost of the building blocks MRCP-RM leans on (Section VI's
"the main factor that causes an increase in O is the time it takes ... to
generate and solve the OPL model"): model build time, warm-start list
scheduling, root propagation, and a full budgeted solve, as the batch size
grows.
"""

import pytest

from repro.core.formulation import build_model
from repro.cp.heuristics import list_schedule
from repro.cp.solver import CpSolver, SolverParams
from repro.workload import (
    SyntheticWorkloadParams,
    generate_synthetic_workload,
    make_uniform_cluster,
)


def _batch(num_jobs, seed=5):
    params = SyntheticWorkloadParams(
        num_jobs=num_jobs,
        map_tasks_range=(1, 10),
        reduce_tasks_range=(1, 5),
        e_max=20,
        ar_probability=0.0,
        deadline_multiplier_max=3.0,
        arrival_rate=1.0,  # a dense batch
        total_map_slots=20,
        total_reduce_slots=20,
    )
    jobs = generate_synthetic_workload(params, seed=seed)
    resources = make_uniform_cluster(10, 2, 2)
    return jobs, resources


@pytest.mark.parametrize("num_jobs", [5, 15, 30])
def test_model_build_scales(benchmark, num_jobs):
    jobs, resources = _batch(num_jobs)
    result = benchmark(lambda: build_model(jobs, resources, now=0))
    tasks = len(result.interval_of)
    benchmark.extra_info["tasks"] = tasks
    assert tasks == sum(len(j.tasks) for j in jobs)


@pytest.mark.parametrize("num_jobs", [5, 15, 30])
def test_warm_start_scales(benchmark, num_jobs):
    jobs, resources = _batch(num_jobs)
    formulation = build_model(jobs, resources, now=0)
    formulation.model.engine().reset()

    sol = benchmark(lambda: list_schedule(formulation.model, "edf"))
    assert sol is not None
    benchmark.extra_info["late"] = sol.objective


@pytest.mark.parametrize("num_jobs", [5, 15])
def test_full_solve_budgeted(benchmark, num_jobs):
    jobs, resources = _batch(num_jobs)
    solver = CpSolver(SolverParams(time_limit=0.5))

    def solve():
        formulation = build_model(jobs, resources, now=0)
        return solver.solve(formulation.model)

    result = benchmark.pedantic(solve, rounds=3, iterations=1)
    assert result.status.has_solution
    benchmark.extra_info["objective"] = result.objective


def test_root_propagation(benchmark):
    jobs, resources = _batch(30)
    formulation = build_model(jobs, resources, now=0)
    engine = formulation.model.engine()

    def propagate():
        engine.reset()
        engine.propagate()

    benchmark(propagate)
    benchmark.extra_info["propagations"] = engine.propagation_count
