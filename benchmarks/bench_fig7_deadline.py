"""Figure 7: effect of the deadline multiplier upper bound (d_UL in {2,5,10}).

Paper shape: the sharpest figure -- P collapses from 3.46% at d_UL=2 to
0.56% and 0.21% at 5 and 10, and O drops alongside (less laxity means the
solver works much harder at d_UL=2).  T barely moves.
"""

from _shape import series_of, values, weakly_decreasing


def test_fig7_deadline_effect(run_figure):
    rows = run_figure("fig7")
    p = values(series_of(rows, "d_UL", "P"))
    o = values(series_of(rows, "d_UL", "O"))
    t = values(series_of(rows, "d_UL", "T"))
    assert len(p) == 3
    # late jobs fall monotonically as deadlines loosen
    assert weakly_decreasing(p, slack=0.5)
    assert p[0] >= p[-1]
    # tight deadlines are where the solver sweats: O highest at d_UL=2
    assert o[0] >= o[-1]
    # T is not materially affected (paper observation)
    assert max(t) <= 1.5 * min(t) + 1.0
