"""Extension benches: DAG workflows (the Section VII generalisation).

Not a paper figure -- these exercise the future-work feature the paper
motivates, with the same harness and shape discipline as Figures 4-9.
"""

from _shape import endpoints_increase, series_of, values


def test_ext_workflow_depth(run_figure):
    rows = run_figure("ext-workflow-depth")
    t = values(series_of(rows, "max stages", "T"))
    assert len(t) == 3
    # longer critical paths -> longer turnarounds
    assert endpoints_increase(t)
    assert t[-1] > t[0]


def test_ext_workflow_density(run_figure):
    rows = run_figure("ext-workflow-density")
    t = values(series_of(rows, "extra edge probability", "T"))
    assert len(t) == 3
    # denser precedence cannot speed jobs up
    assert t[-1] >= t[0] * 0.95
