"""Figure 3: MRCP-RM vs MinEDF-WC -- average job turnaround time.

Paper shape: MRCP-RM achieves up to ~7% lower T than MinEDF-WC; the two
curves track each other closely as lambda rises.  We assert MRCP-RM stays
within a modest factor of the baseline (it trades a little T for far fewer
deadline misses) and that both T series grow with the arrival rate.
"""

from _shape import endpoints_increase, mean, series_of, values


def test_fig3_mrcp_vs_minedf_turnaround(run_figure):
    rows = run_figure("fig3")
    t_mrcp = values(series_of(rows, "lambda (jobs/s)", "T", "mrcp-rm"))
    t_minedf = values(series_of(rows, "lambda (jobs/s)", "T", "minedf-wc"))
    assert len(t_mrcp) == len(t_minedf) == 5
    # the two schedulers' turnaround times are comparable (paper: within ~7%)
    assert mean(t_mrcp) <= 1.5 * mean(t_minedf)
    # contention grows with lambda for both
    assert endpoints_increase(t_mrcp)
    assert endpoints_increase(t_minedf)
