"""Benchmark helpers.

Every figure benchmark runs its full experiment series once inside
``benchmark.pedantic`` (the measurement is the series wall time -- the cost
of regenerating the figure), prints the series table, attaches the data to
``benchmark.extra_info`` and returns the rows for shape assertions.

Benchmarks default to a *reduced* scaled profile (fewer jobs/replications
than the library's scaled profile) so the whole suite stays in minutes.
Set ``MRCP_BENCH_PROFILE=paper`` for the original Table 3/4 values.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, List, Optional

import pytest

from repro.experiments.configs import PAPER, SCALED, figure_series
from repro.experiments.reporting import format_series, run_series, series_rows

BENCH_PROFILE = os.environ.get("MRCP_BENCH_PROFILE", SCALED)
BENCH_REPLICATIONS = int(os.environ.get("MRCP_BENCH_REPLICATIONS", "2"))
#: Jobs per run in the reduced profile (None = keep the profile's value).
BENCH_NUM_JOBS: Optional[int] = (
    None if BENCH_PROFILE == PAPER else int(os.environ.get("MRCP_BENCH_JOBS", "25"))
)


def _shrink(config) -> None:
    if BENCH_NUM_JOBS is None:
        return
    if config.synthetic is not None:
        config.synthetic = replace(config.synthetic, num_jobs=BENCH_NUM_JOBS)
    if config.facebook is not None:
        config.facebook = replace(config.facebook, num_jobs=BENCH_NUM_JOBS)


@pytest.fixture
def run_figure(benchmark):
    """Fixture: run one figure's series under the benchmark timer."""

    def _run(figure: str) -> List[Dict[str, object]]:
        series = figure_series(figure, BENCH_PROFILE)
        for labeled in series.configs:
            _shrink(labeled.config)

        holder: Dict[str, dict] = {}

        def execute():
            holder["results"] = run_series(
                series, replications=BENCH_REPLICATIONS
            )

        benchmark.pedantic(execute, rounds=1, iterations=1)
        results = holder["results"]
        print()
        print(format_series(series, results))
        rows = series_rows(series, results, metrics=("O", "T", "P", "N"))
        benchmark.extra_info["figure"] = series.figure
        benchmark.extra_info["rows"] = [
            {k: v for k, v in row.items()} for row in rows
        ]
        return rows

    return _run
