"""Benchmark regression runner (thin wrapper).

Equivalent to ``repro bench`` / ``python -m repro.bench``: runs the pinned
suite from :mod:`repro.bench` and compares it against the committed
``BENCH_core.json`` baseline, exiting nonzero on regression.  Lives here so
``benchmarks/`` is the one place to look for everything benchmark-shaped.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/regress.py            # compare
    PYTHONPATH=src python benchmarks/regress.py --update   # rewrite baseline
"""

from repro.bench import main

if __name__ == "__main__":
    raise SystemExit(main())
