"""Figure 8: effect of the job arrival rate (lambda in {1e-3 .. 2e-2}).

Paper shape: O, T and P all increase with lambda (more jobs in flight means
more frozen-task constraints per solve and more resource contention); even
at the highest rate O remains a tiny fraction of T (O/T <= 0.04% in the
paper; the ratio differs on our substrate but stays small).
"""

from _shape import endpoints_increase, series_of, values


def test_fig8_arrival_rate_effect(run_figure):
    rows = run_figure("fig8")
    t = values(series_of(rows, "lambda", "T"))
    p = values(series_of(rows, "lambda", "P"))
    o = values(series_of(rows, "lambda", "O"))
    assert len(t) == 4
    assert endpoints_increase(t)
    assert p[-1] >= p[0]
    # scheduling overhead remains small relative to turnaround throughout
    for o_i, t_i in zip(o, t):
        assert o_i <= 0.25 * t_i
