"""Figure 6: effect of the advance-reservation probability (p).

Paper shape: same direction as Figure 5 (more AR jobs => less overlap =>
lower T and P) but a weaker O effect because the default s_max is small.
"""

from _shape import endpoints_decrease, series_of, values


def test_fig6_ar_probability_effect(run_figure):
    rows = run_figure("fig6")
    t = values(series_of(rows, "p", "T"))
    p = values(series_of(rows, "p", "P"))
    assert len(t) == 3
    assert endpoints_decrease(t)
    # late jobs do not increase when more of the load is pre-booked
    assert p[-1] <= p[0] + 1.0
