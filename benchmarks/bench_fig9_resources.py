"""Figure 9: effect of the number of resources (m).

Paper shape: shrinking the cluster from m=50 to m=25 raises T and P
markedly (P hits 3.89% at the smallest m) and O climbs as the solver has to
juggle contention; growing m from 50 to 100 changes little because most
tasks already start at their earliest start times.
"""

from _shape import endpoints_decrease, series_of, values


def test_fig9_resource_count_effect(run_figure):
    rows = run_figure("fig9")
    t = values(series_of(rows, "m", "T"))
    p = values(series_of(rows, "m", "P"))
    assert len(t) == 3
    # more resources -> shorter turnaround and fewer late jobs
    assert endpoints_decrease(t)
    assert endpoints_decrease(p)
    # the small-m end is the painful one
    assert t[0] >= t[1]
