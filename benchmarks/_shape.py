"""Shape-assertion helpers shared by the figure benchmarks.

The reproduction contract is about *shapes*, not absolute values (the
substrate is a simulator plus a from-scratch CP solver, not the authors'
CPLEX testbed): who wins, which direction a metric moves, where the big
jumps are.  These helpers express those assertions tolerantly enough to
survive small-sample noise at benchmark scale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def by_scheduler(rows: Sequence[Dict], scheduler: str) -> List[Dict]:
    return [r for r in rows if r["scheduler"] == scheduler]


def series_of(
    rows: Sequence[Dict],
    factor: str,
    metric: str,
    scheduler: Optional[str] = None,
) -> List[Tuple[float, float]]:
    """[(factor value, metric mean)] sorted by factor value."""
    picked = rows if scheduler is None else by_scheduler(rows, scheduler)
    return sorted((float(r[factor]), float(r[metric])) for r in picked)


def values(series: Sequence[Tuple[float, float]]) -> List[float]:
    return [v for _, v in series]


def weakly_increasing(seq: Sequence[float], slack: float = 0.0) -> bool:
    """Each step may dip by at most ``slack`` (absolute)."""
    return all(b >= a - slack for a, b in zip(seq, seq[1:]))


def weakly_decreasing(seq: Sequence[float], slack: float = 0.0) -> bool:
    return all(b <= a + slack for a, b in zip(seq, seq[1:]))


def endpoints_increase(seq: Sequence[float]) -> bool:
    """The last point is at least the first (direction of travel)."""
    return seq[-1] >= seq[0]


def endpoints_decrease(seq: Sequence[float]) -> bool:
    return seq[-1] <= seq[0]


def mean(seq: Sequence[float]) -> float:
    return sum(seq) / len(seq) if seq else 0.0
