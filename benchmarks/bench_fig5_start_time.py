"""Figure 5: effect of the AR start-time offset bound (s_max).

Paper shape: O, T and P all tend to *decrease* as s_max grows -- jobs spread
out over future reservation windows, so fewer overlap at any instant and
each solver invocation carries fewer tasks.
"""

from _shape import endpoints_decrease, series_of, values


def test_fig5_start_time_effect(run_figure):
    rows = run_figure("fig5")
    t = values(series_of(rows, "s_max", "T"))
    p = values(series_of(rows, "s_max", "P"))
    assert len(t) == 3
    # overlap (and hence waiting) falls as reservations spread out
    assert endpoints_decrease(t)
    assert endpoints_decrease(p)
