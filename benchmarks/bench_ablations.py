"""Ablation benches for the design choices DESIGN.md Section 5 calls out.

Each ablation runs the corresponding experiment series and asserts the
direction the paper's design discussion predicts.
"""

from _shape import series_of, values


def test_ablation_separation(run_figure):
    """Section V.D: the combined-resource formulation should cut solver
    overhead substantially versus joint matchmaking (the paper's anecdote:
    15 s vs 60 s), at comparable solution quality."""
    rows = run_figure("ablation-separation")
    o = dict(series_of(rows, "mode", "O"))  # 0.0 = combined, 1.0 = joint
    p = dict(series_of(rows, "mode", "P"))
    assert o[0.0] <= o[1.0] * 1.05  # combined no slower (usually far faster)
    assert abs(p[0.0] - p[1.0]) <= 15.0  # quality in the same ballpark


def test_ablation_est_deferral(run_figure):
    """Section V.E: deferring far-future reservations shrinks each solve;
    overhead must not increase, and outcomes must not degrade."""
    rows = run_figure("ablation-est-deferral")
    o = dict(series_of(rows, "deferral", "O"))  # 1.0 = on, 0.0 = off
    p = dict(series_of(rows, "deferral", "P"))
    assert o[1.0] <= o[0.0] * 1.25
    assert p[1.0] <= p[0.0] + 5.0


def test_ablation_ordering(run_figure):
    """Section VI.B: the three job orderings should produce similar P
    (the paper reports no significant difference)."""
    rows = run_figure("ablation-ordering")
    p = values(series_of(rows, "ordering", "P"))
    assert len(p) == 3
    assert max(p) - min(p) <= 10.0


def test_ablation_lns(run_figure):
    """LNS should not hurt: with tight deadlines, the improvement phase
    produces no more late jobs than warm start + tree search alone."""
    rows = run_figure("ablation-lns")
    p = dict(series_of(rows, "lns", "P"))  # 1.0 = on, 0.0 = off
    assert p[1.0] <= p[0.0] + 2.0


def test_ablation_hints(run_figure):
    """Previous-plan warm starts (Fig. 1's incremental loop) must not hurt
    solution quality."""
    rows = run_figure("ablation-hints")
    p = dict(series_of(rows, "hints", "P"))  # 1.0 = on, 0.0 = off
    assert p[1.0] <= p[0.0] + 2.0


def test_ablation_replanning(run_figure):
    """Table 2's incremental re-planning should reduce late jobs versus
    scheduling each job once on arrival, at the cost of extra overhead."""
    rows = run_figure("ablation-replanning")
    p = dict(series_of(rows, "replan", "P"))  # 1.0 = on, 0.0 = off
    n = dict(series_of(rows, "replan", "N"))
    assert p[1.0] <= p[0.0] + 1.0
    assert n[1.0] <= n[0.0] + 0.5
